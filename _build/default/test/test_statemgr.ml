(* Tests for the paged state region, Merkle tree and checkpoints. *)

let qcheck = QCheck_alcotest.to_alcotest

let make_pages ?(strict = false) ?(num_pages = 16) () =
  Statemgr.Pages.create ~strict ~page_size:256 ~num_pages ()

(* --- pages --- *)

let test_pages_rw () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:10 "hello";
  Alcotest.(check string) "read back" "hello" (Statemgr.Pages.read p ~pos:10 ~len:5);
  Alcotest.(check string) "zeros elsewhere" "\000\000" (Statemgr.Pages.read p ~pos:100 ~len:2)

let test_pages_cross_page_write () =
  let p = make_pages () in
  let s = String.init 300 (fun i -> Char.chr (i mod 256)) in
  Statemgr.Pages.write p ~pos:200 s;
  Alcotest.(check string) "spans pages" s (Statemgr.Pages.read p ~pos:200 ~len:300);
  Alcotest.(check (list int)) "both pages dirty" [ 0; 1 ] (Statemgr.Pages.dirty p)

let test_pages_bounds () =
  let p = make_pages () in
  Alcotest.check_raises "oob read" (Invalid_argument "Pages: out of bounds") (fun () ->
      ignore (Statemgr.Pages.read p ~pos:(16 * 256) ~len:1));
  Alcotest.check_raises "oob write" (Invalid_argument "Pages: out of bounds") (fun () ->
      Statemgr.Pages.write p ~pos:(16 * 256 - 1) "ab")

(* §3.2's "havoc caused by a misbehaving application which fails to
   notify the library before modifying memory": strict mode turns the
   violation into an exception. *)
let test_pages_strict_contract () =
  let p = make_pages ~strict:true () in
  Alcotest.check_raises "unnotified write" (Statemgr.Pages.Unnotified_write 0) (fun () ->
      Statemgr.Pages.write p ~pos:0 "x");
  Statemgr.Pages.notify_modify p ~pos:0 ~len:1;
  Statemgr.Pages.write p ~pos:0 "x";
  Alcotest.(check string) "after notify ok" "x" (Statemgr.Pages.read p ~pos:0 ~len:1);
  (* The notification covers only its pages. *)
  Alcotest.check_raises "other page still protected" (Statemgr.Pages.Unnotified_write 3)
    (fun () -> Statemgr.Pages.write p ~pos:(3 * 256) "y")

let test_pages_dirty_tracking () =
  let p = make_pages () in
  Alcotest.(check (list int)) "clean" [] (Statemgr.Pages.dirty p);
  Statemgr.Pages.notify_modify p ~pos:600 ~len:10;
  Alcotest.(check (list int)) "notify marks" [ 2 ] (Statemgr.Pages.dirty p);
  Statemgr.Pages.write p ~pos:0 "a";
  Alcotest.(check (list int)) "write marks" [ 0; 2 ] (Statemgr.Pages.dirty p);
  Statemgr.Pages.clear_dirty p;
  Alcotest.(check (list int)) "cleared" [] (Statemgr.Pages.dirty p)

let test_pages_sparse_allocation () =
  let p = make_pages ~num_pages:1000 () in
  Alcotest.(check int) "nothing allocated" 0 (Statemgr.Pages.allocated_pages p);
  Statemgr.Pages.write p ~pos:(500 * 256) "x";
  Alcotest.(check int) "one page materialized" 1 (Statemgr.Pages.allocated_pages p)

let test_pages_copy_isolated () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:0 "orig";
  let q = Statemgr.Pages.copy p in
  Statemgr.Pages.write p ~pos:0 "mut!";
  Alcotest.(check string) "copy unchanged" "orig" (Statemgr.Pages.read q ~pos:0 ~len:4)

let test_pages_load_page () =
  let p = make_pages () in
  let img = String.make 256 'z' in
  Statemgr.Pages.load_page p 3 img;
  Alcotest.(check string) "installed" img (Statemgr.Pages.page p 3);
  Alcotest.check_raises "size mismatch" (Invalid_argument "Pages.load_page: size mismatch")
    (fun () -> Statemgr.Pages.load_page p 0 "short")

(* --- merkle --- *)

let test_merkle_root_changes () =
  let p = make_pages () in
  let t = Statemgr.Merkle.build p in
  let r0 = Statemgr.Merkle.root t in
  Statemgr.Pages.write p ~pos:0 "x";
  Statemgr.Merkle.update t p [ 0 ];
  let r1 = Statemgr.Merkle.root t in
  Alcotest.(check bool) "root changed" false (String.equal r0 r1)

let prop_merkle_update_equals_rebuild =
  QCheck.Test.make ~name:"incremental update = full rebuild" ~count:100
    QCheck.(small_list (pair small_nat small_string))
    (fun writes ->
      let p = make_pages () in
      let t = Statemgr.Merkle.build p in
      List.iter
        (fun (page, content) ->
          let page = page mod 16 in
          let content = if content = "" then "x" else content in
          let content = String.sub content 0 (min 200 (String.length content)) in
          Statemgr.Pages.write p ~pos:(page * 256) content;
          Statemgr.Merkle.update t p [ page ])
        writes;
      String.equal (Statemgr.Merkle.root t) (Statemgr.Merkle.root (Statemgr.Merkle.build p)))

let prop_merkle_diff_finds_changes =
  QCheck.Test.make ~name:"diff finds exactly the changed pages" ~count:100
    QCheck.(small_list small_nat)
    (fun pages_to_change ->
      let changed = List.sort_uniq compare (List.map (fun i -> i mod 16) pages_to_change) in
      let a = make_pages () in
      let ta = Statemgr.Merkle.build a in
      let b = make_pages () in
      List.iter (fun page -> Statemgr.Pages.write b ~pos:(page * 256) "CHANGED") changed;
      let tb = Statemgr.Merkle.build b in
      let divergent, visited = Statemgr.Merkle.diff ta tb in
      divergent = changed && visited >= 1)

let test_merkle_diff_identical () =
  let p = make_pages () in
  let t = Statemgr.Merkle.build p in
  let divergent, visited = Statemgr.Merkle.diff t (Statemgr.Merkle.copy t) in
  Alcotest.(check (list int)) "no divergence" [] divergent;
  Alcotest.(check int) "only root visited" 1 visited

let test_merkle_leaf_access () =
  let p = make_pages () in
  let t = Statemgr.Merkle.build p in
  Alcotest.(check int) "leaves" 16 (Statemgr.Merkle.num_leaves t);
  Alcotest.check_raises "oob leaf" (Invalid_argument "Merkle.leaf") (fun () ->
      ignore (Statemgr.Merkle.leaf t 16))

let test_merkle_non_power_of_two () =
  let p = Statemgr.Pages.create ~page_size:64 ~num_pages:5 () in
  let t = Statemgr.Merkle.build p in
  Statemgr.Pages.write p ~pos:(4 * 64) "tail";
  Statemgr.Merkle.update t p [ 4 ];
  Alcotest.(check bool) "rebuild agrees" true
    (String.equal (Statemgr.Merkle.root t) (Statemgr.Merkle.root (Statemgr.Merkle.build p)))

(* --- checkpoints --- *)

let test_checkpoint_roundtrip () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:0 "state at 10";
  let t = Statemgr.Merkle.build p in
  let ck = Statemgr.Checkpoint.take ~seqno:10 p t in
  Alcotest.(check int) "seqno" 10 (Statemgr.Checkpoint.seqno ck);
  Alcotest.(check string) "root matches" (Statemgr.Merkle.root t) (Statemgr.Checkpoint.root ck);
  (* Mutate, then restore. *)
  Statemgr.Pages.write p ~pos:0 "DIVERGED!!!";
  Statemgr.Pages.write p ~pos:512 "more";
  Statemgr.Merkle.update t p (Statemgr.Pages.dirty p);
  Statemgr.Checkpoint.restore ck p t;
  Alcotest.(check string) "state restored" "state at 10" (Statemgr.Pages.read p ~pos:0 ~len:11);
  Alcotest.(check string) "root restored" (Statemgr.Checkpoint.root ck) (Statemgr.Merkle.root t)

let test_checkpoint_snapshot_isolated () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:0 "before";
  let t = Statemgr.Merkle.build p in
  let ck = Statemgr.Checkpoint.take ~seqno:1 p t in
  Statemgr.Pages.write p ~pos:0 "after!";
  Alcotest.(check string) "snapshot keeps old page" "before"
    (String.sub (Statemgr.Checkpoint.page ck 0) 0 6)

let test_root_of_leaves_matches_tree () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:100 "contents";
  Statemgr.Pages.write p ~pos:(5 * 256) "more";
  let t = Statemgr.Merkle.build p in
  let leaves = List.init (Statemgr.Merkle.num_leaves t) (Statemgr.Merkle.leaf t) in
  Alcotest.(check string) "root recomputed from leaves"
    (Statemgr.Merkle.root t)
    (Statemgr.Merkle.root_of_leaves leaves);
  (* Tampering with any single claimed leaf digest changes the root: a
     Byzantine state-transfer peer cannot substitute pages. *)
  let tampered = List.mapi (fun i l -> if i = 5 then String.make 32 'e' else l) leaves in
  Alcotest.(check bool) "tampered leaf detected" false
    (String.equal (Statemgr.Merkle.root t) (Statemgr.Merkle.root_of_leaves tampered));
  Alcotest.(check string) "page digest matches leaf"
    (Statemgr.Merkle.leaf t 5)
    (Statemgr.Merkle.page_digest (Statemgr.Pages.page p 5))

let test_checkpoint_divergent_pages () =
  let p = make_pages () in
  let t = Statemgr.Merkle.build p in
  let ck = Statemgr.Checkpoint.take ~seqno:1 p t in
  Statemgr.Pages.write p ~pos:(2 * 256) "x";
  Statemgr.Pages.write p ~pos:(7 * 256) "y";
  Statemgr.Merkle.update t p (Statemgr.Pages.dirty p);
  let divergent, _ = Statemgr.Checkpoint.divergent_pages ~local:t ck in
  Alcotest.(check (list int)) "exactly the mutated pages" [ 2; 7 ] divergent

let () =
  Alcotest.run "statemgr"
    [
      ( "pages",
        [
          Alcotest.test_case "read/write" `Quick test_pages_rw;
          Alcotest.test_case "cross-page write" `Quick test_pages_cross_page_write;
          Alcotest.test_case "bounds" `Quick test_pages_bounds;
          Alcotest.test_case "strict notify contract (§3.2)" `Quick test_pages_strict_contract;
          Alcotest.test_case "dirty tracking" `Quick test_pages_dirty_tracking;
          Alcotest.test_case "sparse allocation" `Quick test_pages_sparse_allocation;
          Alcotest.test_case "copy isolation" `Quick test_pages_copy_isolated;
          Alcotest.test_case "load_page" `Quick test_pages_load_page;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "root changes on write" `Quick test_merkle_root_changes;
          Alcotest.test_case "diff identical" `Quick test_merkle_diff_identical;
          Alcotest.test_case "leaf access" `Quick test_merkle_leaf_access;
          Alcotest.test_case "non-power-of-two leaves" `Quick test_merkle_non_power_of_two;
          qcheck prop_merkle_update_equals_rebuild;
          qcheck prop_merkle_diff_finds_changes;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "take/restore roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "snapshot isolation" `Quick test_checkpoint_snapshot_isolated;
          Alcotest.test_case "divergent pages" `Quick test_checkpoint_divergent_pages;
          Alcotest.test_case "root from claimed leaves (transfer verification)" `Quick
            test_root_of_leaves_matches_tree;
        ] );
    ]
