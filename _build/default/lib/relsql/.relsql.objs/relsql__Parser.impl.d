lib/relsql/parser.ml: Array Ast Lexer List Printf String Value
