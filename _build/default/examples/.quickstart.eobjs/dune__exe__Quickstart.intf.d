examples/quickstart.mli:
