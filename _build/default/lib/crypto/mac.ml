type key = string

let tag_size = 8

let compute ~key msg = String.sub (Hmac.mac ~key msg) 0 tag_size

let verify ~key msg ~tag =
  String.length tag = tag_size
  &&
  let expected = compute ~key msg in
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
  !diff = 0

let fresh_key rng = Bytes.to_string (Util.Rng.bytes rng 16)
