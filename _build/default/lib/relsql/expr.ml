exception Eval_error of string

type binding = { b_table : string; b_cols : string list; b_row : Value.t array }

type env = {
  bindings : binding list;
  env_time : unit -> float;
  env_random : unit -> int64;
}

let aggregates = [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]

let rec is_aggregate = function
  | Ast.Call (name, args) -> List.mem name aggregates || List.exists is_aggregate args
  | Ast.Binop (_, a, b) -> is_aggregate a || is_aggregate b
  | Ast.Unop (_, a) | Ast.Is_null (a, _) -> is_aggregate a
  | Ast.Like (a, b) -> is_aggregate a || is_aggregate b
  | Ast.Lit _ | Ast.Col _ | Ast.Star -> false

let lookup_col env qualifier name =
  let name = String.lowercase_ascii name in
  let matching =
    List.filter_map
      (fun b ->
        let consider =
          match qualifier with Some q -> String.lowercase_ascii q = b.b_table | None -> true
        in
        if not consider then None
        else begin
          match List.find_index (String.equal name) b.b_cols with
          | Some i -> Some b.b_row.(i)
          | None -> None
        end)
      env.bindings
  in
  match matching with
  | [ v ] -> v
  | [] -> raise (Eval_error (Printf.sprintf "no such column: %s" name))
  | _ :: _ -> raise (Eval_error (Printf.sprintf "ambiguous column: %s" name))

let like_match ~pattern text =
  let np = String.length pattern and nt = String.length text in
  (* Memoized recursion over (pattern index, text index). *)
  let memo = Hashtbl.create 16 in
  let rec go pi ti =
    match Hashtbl.find_opt memo (pi, ti) with
    | Some v -> v
    | None ->
      let v =
        if pi = np then ti = nt
        else begin
          match pattern.[pi] with
          | '%' -> (ti <= nt && go (pi + 1) ti) || (ti < nt && go pi (ti + 1))
          | '_' -> ti < nt && go (pi + 1) (ti + 1)
          | c ->
            ti < nt
            && Char.lowercase_ascii c = Char.lowercase_ascii text.[ti]
            && go (pi + 1) (ti + 1)
        end
      in
      Hashtbl.add memo (pi, ti) v;
      v
  in
  go 0 0

let numeric_binop op a b =
  match (Value.as_number a, Value.as_number b) with
  | Some x, Some y -> begin
    match (a, b, op) with
    | Value.Int xi, Value.Int yi, "+" -> Value.Int (xi + yi)
    | Value.Int xi, Value.Int yi, "-" -> Value.Int (xi - yi)
    | Value.Int xi, Value.Int yi, "*" -> Value.Int (xi * yi)
    | Value.Int xi, Value.Int yi, "%" when yi <> 0 -> Value.Int (xi mod yi)
    | Value.Int xi, Value.Int yi, "/" when yi <> 0 -> Value.Int (xi / yi)
    | _, _, "+" -> Value.Real (x +. y)
    | _, _, "-" -> Value.Real (x -. y)
    | _, _, "*" -> Value.Real (x *. y)
    | _, _, "/" when y <> 0.0 -> Value.Real (x /. y)
    | _, _, ("/" | "%") -> Value.Null
    | _ -> raise (Eval_error ("bad numeric operator " ^ op))
  end
  | _ -> Value.Null

let rec eval env (e : Ast.expr) =
  match e with
  | Ast.Lit v -> v
  | Ast.Star -> raise (Eval_error "misplaced *")
  | Ast.Col (q, name) -> lookup_col env q name
  | Ast.Unop ("NOT", a) ->
    let v = eval env a in
    if Value.is_null v then Value.Null else Value.Int (if Value.truthy v then 0 else 1)
  | Ast.Unop ("-", a) -> begin
    match eval env a with
    | Value.Int i -> Value.Int (-i)
    | Value.Real f -> Value.Real (-.f)
    | Value.Null -> Value.Null
    | Value.Text _ -> Value.Null
  end
  | Ast.Unop (op, _) -> raise (Eval_error ("unknown unary operator " ^ op))
  | Ast.Is_null (a, positive) ->
    let isn = Value.is_null (eval env a) in
    Value.Int (if isn = positive then 1 else 0)
  | Ast.Like (a, p) -> begin
    match (eval env a, eval env p) with
    | Value.Text s, Value.Text pat -> Value.Int (if like_match ~pattern:pat s then 1 else 0)
    | (Value.Null | Value.Int _ | Value.Real _ | Value.Text _), _ -> Value.Null
  end
  | Ast.Binop ("AND", a, b) ->
    (* Three-valued logic with short-circuit on definite false. *)
    let va = eval env a in
    if (not (Value.is_null va)) && not (Value.truthy va) then Value.Int 0
    else begin
      let vb = eval env b in
      if (not (Value.is_null vb)) && not (Value.truthy vb) then Value.Int 0
      else if Value.is_null va || Value.is_null vb then Value.Null
      else Value.Int 1
    end
  | Ast.Binop ("OR", a, b) ->
    let va = eval env a in
    if (not (Value.is_null va)) && Value.truthy va then Value.Int 1
    else begin
      let vb = eval env b in
      if (not (Value.is_null vb)) && Value.truthy vb then Value.Int 1
      else if Value.is_null va || Value.is_null vb then Value.Null
      else Value.Int 0
    end
  | Ast.Binop ("||", a, b) -> begin
    match (eval env a, eval env b) with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | x, y -> Value.Text (Value.to_string x ^ Value.to_string y)
  end
  | Ast.Binop (("=" | "<>" | "<" | "<=" | ">" | ">=") as op, a, b) ->
    let va = eval env a and vb = eval env b in
    if Value.is_null va || Value.is_null vb then Value.Null
    else begin
      let c = Value.compare_sql va vb in
      let r =
        match op with
        | "=" -> c = 0
        | "<>" -> c <> 0
        | "<" -> c < 0
        | "<=" -> c <= 0
        | ">" -> c > 0
        | ">=" -> c >= 0
        | _ -> assert false
      in
      Value.Int (if r then 1 else 0)
    end
  | Ast.Binop (("+" | "-" | "*" | "/" | "%") as op, a, b) ->
    numeric_binop op (eval env a) (eval env b)
  | Ast.Binop (op, _, _) -> raise (Eval_error ("unknown operator " ^ op))
  | Ast.Call ("LENGTH", [ a ]) -> begin
    match eval env a with
    | Value.Null -> Value.Null
    | v -> Value.Int (String.length (Value.to_string v))
  end
  | Ast.Call ("ABS", [ a ]) -> begin
    match eval env a with
    | Value.Int i -> Value.Int (abs i)
    | Value.Real f -> Value.Real (Float.abs f)
    | Value.Null -> Value.Null
    | Value.Text _ -> Value.Null
  end
  | Ast.Call ("UPPER", [ a ]) -> begin
    match eval env a with
    | Value.Text s -> Value.Text (String.uppercase_ascii s)
    | v -> v
  end
  | Ast.Call ("LOWER", [ a ]) -> begin
    match eval env a with
    | Value.Text s -> Value.Text (String.lowercase_ascii s)
    | v -> v
  end
  | Ast.Call ("COALESCE", args) ->
    let rec first = function
      | [] -> Value.Null
      | a :: rest ->
        let v = eval env a in
        if Value.is_null v then first rest else v
    in
    first args
  | Ast.Call ("RANDOM", []) -> Value.Int (Int64.to_int (env.env_random ()) land max_int)
  | Ast.Call ("NOW", []) | Ast.Call ("CURRENT_TIMESTAMP", []) -> Value.Real (env.env_time ())
  | Ast.Call (name, _) when List.mem name aggregates ->
    raise (Eval_error (name ^ " used outside an aggregating select"))
  | Ast.Call (name, _) -> raise (Eval_error ("unknown function " ^ name))
