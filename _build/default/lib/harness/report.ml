type row = { name : string; paper : float option; measured : float; unit_ : string; note : string }
type t = { title : string; rows : row list; commentary : string list }

let row ?paper ?(note = "") ?(unit_ = "TPS") name measured = { name; paper; measured; unit_; note }

let fmt_num v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.3f" v

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let name_w =
    List.fold_left (fun acc r -> max acc (String.length r.name)) 24 t.rows
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %12s %12s %6s  %s\n" name_w "configuration" "paper" "measured" "unit"
       "note");
  List.iter
    (fun r ->
      let paper = match r.paper with Some p -> fmt_num p | None -> "-" in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %12s %12s %6s  %s\n" name_w r.name paper (fmt_num r.measured)
           r.unit_ r.note))
    t.rows;
  List.iter (fun c -> Buffer.add_string buf ("  " ^ c ^ "\n")) t.commentary;
  Buffer.contents buf
