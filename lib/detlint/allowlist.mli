(** The checked-in file-level exemption list ([detlint.allow]).

    One entry per line: [<rule> <path> <justification...>]. The
    justification is mandatory — an exemption nobody can defend is a
    finding, not an exemption. ['#'] starts a comment; blank lines are
    ignored. Entries match findings by exact rule name and repo-relative
    path; entries that match nothing are reported as stale so the file
    cannot rot. *)

type entry = {
  al_rule : string;
  al_path : string;
  al_why : string;
  al_line : int;  (** line in the allow file, for stale-entry reports *)
  mutable al_used : bool;
}

type t

exception Malformed of string
(** Raised by {!load}/{!of_string} on a syntactically bad or
    justification-free entry, or an unknown rule name. *)

val empty : t
val load : string -> t
val of_string : string -> t
val suppresses : t -> Finding.t -> bool
(** Marks the matching entry used. *)

val stale : t -> entry list
(** Entries that never matched a finding. *)
