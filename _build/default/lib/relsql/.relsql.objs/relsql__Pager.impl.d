lib/relsql/pager.ml: Bytes Char Hashtbl Int32 String Util Vfs
