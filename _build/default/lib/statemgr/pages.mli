(** The PBFT state region: a single contiguous memory area divided into
    equal pages (§2.1, §3.2).

    The application has free read access but must call {!notify_modify}
    before changing any byte — exactly the contract the paper criticizes
    as havoc-prone. [strict] mode enforces the contract: a write to a
    page that was not notified raises {!Unnotified_write}, which is how
    our tests demonstrate the failure mode §3.2 warns about. The region
    is sparse: pages are allocated on first touch, so a "large enough"
    region can be declared up front the way the authors used a sparse
    file (§3.2). *)

exception Unnotified_write of int
(** Page index written without a prior notification (strict mode only). *)

type t

val create : ?strict:bool -> page_size:int -> num_pages:int -> unit -> t
val page_size : t -> int
val num_pages : t -> int
val total_size : t -> int

val read : t -> pos:int -> len:int -> string
(** Free read access anywhere in the region; unallocated pages read as
    zeros. Raises [Invalid_argument] out of bounds. *)

val notify_modify : t -> pos:int -> len:int -> unit
(** Declare intent to modify the byte range, marking its pages dirty
    (the copy-on-write hook). *)

val write : t -> pos:int -> string -> unit
(** Write through; in strict mode every touched page must have been
    notified since the last {!clear_dirty}. *)

val page : t -> int -> string
(** Contents of one page (zero page if untouched). *)

val load_page : t -> int -> string -> unit
(** Install page contents wholesale (state transfer); marks it dirty. *)

val dirty : t -> int list
(** Ascending indices of pages notified/written since the last clear. *)

val clear_dirty : t -> unit

val allocated_pages : t -> int
(** Pages actually backed by memory (sparseness metric). *)

val copy : t -> t
(** Deep copy (used to snapshot at a checkpoint). *)
