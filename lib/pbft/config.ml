type nondet_validation =
  | No_validation
  | Delta of float
  | Delta_skip_on_recovery of float

type t = {
  f : int;
  n : int;
  use_macs : bool;
  all_requests_big : bool;
  big_request_threshold : int;
  batching : bool;
  congestion_window : int;
  max_batch_bytes : int;
  batch_delay : float;
  dynamic_clients : bool;
  max_clients : int;
  session_stale_threshold : float;
  checkpoint_interval : int;
  log_window : int;
  client_timeout : float;
  join_request_timeout : float;
  view_change_timeout : float;
  status_period : float;
  authenticator_rebroadcast : float;
  tentative_execution : bool;
  read_only_optimization : bool;
  fetch_missing_bodies : bool;
  fetch_missing_entries : bool;
  nondet : nondet_validation;
  sign_bits : int;
  pipeline_depth : int;
  cores : int;
  rejoin_key_refresh : bool;
  key_refresh_period : float;
}

let default ~f =
  {
    f;
    n = (3 * f) + 1;
    use_macs = true;
    all_requests_big = true;
    big_request_threshold = 0;
    batching = true;
    congestion_window = 1;
    max_batch_bytes = 8 * 1024;
    batch_delay = 80e-6;
    dynamic_clients = false;
    max_clients = 64;
    session_stale_threshold = 30.0;
    checkpoint_interval = 128;
    log_window = 256;
    client_timeout = 0.150;
    join_request_timeout = 1.0;
    view_change_timeout = 5.0;
    status_period = 0.25;
    authenticator_rebroadcast = 2.0;
    tentative_execution = true;
    read_only_optimization = true;
    fetch_missing_bodies = false;
    fetch_missing_entries = false;
    nondet = No_validation;
    sign_bits = 512;
    pipeline_depth = 1;
    cores = 1;
    rejoin_key_refresh = false;
    key_refresh_period = 0.0;
  }

let robust ~f =
  { (default ~f) with use_macs = false; all_requests_big = false; big_request_threshold = 8192 }

let validate t =
  if t.n <> (3 * t.f) + 1 then Error "n must equal 3f+1"
  else if t.f < 1 then Error "f must be at least 1"
  else if t.checkpoint_interval <= 0 then Error "checkpoint_interval must be positive"
  else if t.log_window < 2 * t.checkpoint_interval then
    Error "log_window must be at least two checkpoint intervals"
  else if t.congestion_window < 1 then Error "congestion_window must be at least 1"
  else if t.client_timeout <= 0.0 then Error "client_timeout must be positive"
  else if t.join_request_timeout <= 0.0 then Error "join_request_timeout must be positive"
  else if t.view_change_timeout <= 0.0 then Error "view_change_timeout must be positive"
  else if t.max_clients < 1 then Error "max_clients must be at least 1"
  else if t.pipeline_depth < 1 then Error "pipeline_depth must be at least 1"
  else if t.cores < 1 then Error "cores must be at least 1"
  else if t.key_refresh_period < 0.0 then Error "key_refresh_period must be non-negative"
  else Ok ()

let name t =
  Printf.sprintf "%s_%s_%s_%s"
    (if t.dynamic_clients then "nosta" else "sta")
    (if t.use_macs then "mac" else "nomac")
    (if t.all_requests_big then "allbig" else "noallbig")
    (if t.batching then "batch" else "nobatch")
