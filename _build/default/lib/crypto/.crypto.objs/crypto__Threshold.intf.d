lib/crypto/threshold.mli: Bignum Util
