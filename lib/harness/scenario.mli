(** Experiment driver: the role of the paper's Python/netcat controller
    (§4) — build a cluster, coordinate clients, run a timed workload and
    aggregate the measurements. *)

type spec = {
  cfg : Pbft.Config.t;
  seed : int;
  num_clients : int;
  service : Pbft.Service.t;
  profile : Simnet.Net.profile;
  warmup : float;  (** seconds before measurement starts *)
  duration : float;  (** measured seconds *)
  op : client:int -> seq:int -> string;  (** operation generator *)
  readonly : bool;  (** submit operations as read-only *)
  think_time : float;  (** client delay between requests; 0 = closed loop *)
}

val default_spec : Pbft.Config.t -> spec
(** 12 clients, null service, LAN profile, 0.5 s warmup, 2 s measurement,
    1024-byte null ops, seed 1. *)

type outcome = {
  tps : float;
  completed : int;
  mean_latency : float;
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;
  retransmissions : int;
  view_changes : int;
  demotion_transfers : int;
      (** state transfers started by running replicas that fell behind a
          stable checkpoint (§2.4), summed over replicas *)
  rejoin_transfers : int;
      (** state transfers started by the crash/restart rejoin path *)
  transfer_pages_fetched : int;
      (** distinct pages actually pulled by completed transfers — the
          Merkle-diff cost *)
  transfer_pages_full : int;
      (** pages the same transfers would have pulled without the Merkle
          diff (every leaf) — the savings baseline *)
  demotions : int;
      (** replicas that fell behind a stable checkpoint and re-joined via
          state transfer (the §2.4 demotion pathology) *)
  rollbacks : int;
      (** speculative-execution rollbacks: view changes that undid
          executed-but-uncommitted batches (summed over replicas) *)
  speculative_execs : int;
      (** batches executed before their commit certificate landed — serial
          tentative execution and pipelined speculation both count *)
  tentative_completed : int;
      (** client requests accepted on a 2f+1 tentative-reply quorum rather
          than waiting for f+1 stable replies, within the measured window *)
  auth_failures : int;
  nondet_rejects : int;
  shed : int;
      (** operations rejected by gateway admission control (0 without a
          gateway in front) *)
  gw_evictions : int;
      (** gateway session records displaced by LRU capacity pressure *)
  gw_queue_peak : int;
      (** high-water mark of the gateway's pending queue *)
  replica_queue_peak : int;
      (** max over replicas of the CPU dispatch queue's high-water mark *)
  ro_cache_evictions : int;
      (** replica read-only reply-cache LRU evictions, summed *)
  shards : int;
      (** replica groups serving the workload; 1 for every single-group
          driver, the topology's shard count for {!Shards.run} *)
  shard_tps : float array;
      (** per-shard completed operations per virtual second; a one-element
          array mirroring [tps] in single-group runs *)
  shard_queue_peak : int array;
      (** per-shard front-door pending-queue high-water marks *)
  cross_shard_commits : int;
      (** 2PC transactions committed on every participant (0 single-group) *)
  cross_shard_aborts : int;
      (** 2PC transactions aborted — vote-aborts and coordinator timeouts *)
}

val run : ?hook:(Pbft.Cluster.t -> unit) -> spec -> outcome
(** Build the cluster (joining clients first in dynamic mode), run the
    warmup, measure for [duration], and aggregate. [hook] runs after
    construction and before the workload — the place to schedule fault
    injections on the cluster's engine. *)

val run_cluster : ?hook:(Pbft.Cluster.t -> unit) -> spec -> outcome * Pbft.Cluster.t
(** Like {!run} but also hands back the cluster for post-hoc inspection
    (per-replica counters, traces). *)
