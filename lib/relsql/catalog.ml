type index_def = { idx_name : string; idx_col : string; idx_root : int }

type table = {
  tbl_name : string;
  tbl_cols : Ast.column_def list;
  tbl_root : int;
  tbl_next_rowid : int;
  tbl_indexes : index_def list;
}

type t = { pager : Pager.t }

let enc_col w (c : Ast.column_def) =
  Util.Codec.W.lstring w c.col_name;
  Util.Codec.W.u8 w (match c.col_type with Ast.T_integer -> 0 | Ast.T_real -> 1 | Ast.T_text -> 2);
  Util.Codec.W.bool w c.col_pk

let dec_col r : Ast.column_def =
  let col_name = Util.Codec.R.lstring r in
  let col_type =
    match Util.Codec.R.u8 r with
    | 0 -> Ast.T_integer
    | 1 -> Ast.T_real
    | 2 -> Ast.T_text
    | _ -> raise Util.Codec.R.Truncated
  in
  let col_pk = Util.Codec.R.bool r in
  { col_name; col_type; col_pk }

let enc_table w tbl =
  Util.Codec.W.lstring w tbl.tbl_name;
  Util.Codec.W.list w enc_col tbl.tbl_cols;
  Util.Codec.W.varint w tbl.tbl_root;
  Util.Codec.W.varint w tbl.tbl_next_rowid;
  Util.Codec.W.list w
    (fun w i ->
      Util.Codec.W.lstring w i.idx_name;
      Util.Codec.W.lstring w i.idx_col;
      Util.Codec.W.varint w i.idx_root)
    tbl.tbl_indexes

let dec_table r =
  let tbl_name = Util.Codec.R.lstring r in
  let tbl_cols = Util.Codec.R.list r dec_col in
  let tbl_root = Util.Codec.R.varint r in
  let tbl_next_rowid = Util.Codec.R.varint r in
  let tbl_indexes =
    Util.Codec.R.list r (fun r ->
        let idx_name = Util.Codec.R.lstring r in
        let idx_col = Util.Codec.R.lstring r in
        let idx_root = Util.Codec.R.varint r in
        { idx_name; idx_col; idx_root })
  in
  { tbl_name; tbl_cols; tbl_root; tbl_next_rowid; tbl_indexes }

let key_of_name name = String.lowercase_ascii name

let attach pager =
  let root = Pager.catalog_root pager in
  if Int.equal root 0 then begin
    let standalone = not (Pager.in_txn pager) in
    if standalone then Pager.begin_txn pager;
    let tree = Btree.create pager in
    Pager.set_catalog_root pager (Btree.root tree);
    if standalone then Pager.commit pager
  end;
  { pager }

(* The tree handle is re-opened from the header every time, so the catalog
   survives external rewrites of the region (state transfer). *)
let tree t = Btree.open_tree t.pager ~root:(Pager.catalog_root t.pager)

let persist_root t tr =
  if not (Int.equal (Btree.root tr) (Pager.catalog_root t.pager)) then
    Pager.set_catalog_root t.pager (Btree.root tr)

let find_table t name =
  match Btree.find (tree t) (key_of_name name) with
  | None -> None
  | Some v -> Some (Util.Codec.decode dec_table v)

let create_table t tbl =
  let tr = tree t in
  Btree.insert tr ~key:(key_of_name tbl.tbl_name) ~value:(Util.Codec.encode enc_table tbl);
  persist_root t tr

let update_table = create_table

let drop_table t name =
  let tr = tree t in
  ignore (Btree.delete tr (key_of_name name));
  persist_root t tr

let table_names t =
  let acc = ref [] in
  Btree.iter (tree t) (fun _ v ->
      acc := (Util.Codec.decode dec_table v).tbl_name :: !acc;
      true);
  List.rev !acc

let tables t =
  let acc = ref [] in
  Btree.iter (tree t) (fun _ v ->
      acc := Util.Codec.decode dec_table v :: !acc;
      true);
  List.rev !acc

let find_index t name =
  let name = String.lowercase_ascii name in
  List.find_map
    (fun tbl ->
      List.find_map
        (fun idx ->
          if String.lowercase_ascii idx.idx_name = name then Some (tbl, idx) else None)
        tbl.tbl_indexes)
    (tables t)
