lib/relsql/vfs.mli: Simdisk
