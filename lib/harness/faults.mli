(** Byzantine fault scenario suite.

    Runs each {!Pbft.Adversary} behavior against an otherwise-correct
    f=1 cluster and checks the two BFT properties the paper's robustness
    analysis turns on:

    - {b safety} — correct replicas never commit conflicting batches for
      the same sequence number (pairwise comparison of their
      committed-execution journals) and replicas at the same sequence
      number hold identical state (Merkle root comparison);
    - {b liveness} — client requests keep completing with the adversary
      still installed: the view change votes out a faulty primary, a
      starved backup demotes itself into a state transfer, and forged
      votes are rejected without disturbing a healthy view.

    Every scenario runs a healthy phase first (session keys, progress
    baseline), arms the adversary, and measures progress again in a
    trailing recovery window. All runs are seeded and deterministic. *)

type report = {
  fr_behavior : string;
  fr_mutations : int;
  fr_view_changes : int;
  fr_demotion_transfers : int;
      (** state transfers by running replicas that fell behind (§2.4) *)
  fr_rejoin_transfers : int;
      (** state transfers by the crash/restart rejoin path *)
  fr_pages_fetched : int;
      (** distinct pages actually pulled by completed transfers — the
          Merkle-diff cost *)
  fr_pages_full : int;
      (** pages the same transfers would have pulled without the diff *)
  fr_demotions : int;
  fr_rollbacks : int;
  fr_spec_execs : int;
  fr_auth_failures : int;
  fr_nondet_rejects : int;
  fr_final_view : int;
  fr_baseline : int;
  fr_recovered : int;
  fr_safe : bool;
  fr_live : bool;
  fr_failures : string list;
}

val behaviors : Pbft.Adversary.behavior list
(** The five Byzantine behaviors (selective mute is parameterized) in
    suite order. *)

val run_behavior :
  ?seed:int -> ?trace:bool -> ?speculative:bool -> Pbft.Adversary.behavior -> report * Pbft.Cluster.t
(** Run one scenario; the cluster is returned for post-hoc inspection
    (counters, trace dump on failure). [trace] keeps the message trace
    enabled during the run (default off, for speed) — used when
    re-running a failed scenario to produce the CI artifact.
    [speculative] re-runs the scenario with the execution pipeline on
    ([pipeline_depth = 4], [cores = 2]), so the adversary also faces
    replicas holding executed-but-uncommitted state. *)

val gateway_behaviors : Pbft.Adversary.behavior list
(** Behaviors re-run behind a loaded gateway front door (mute and
    equivocating primary). *)

val run_gateway_behavior :
  ?seed:int -> ?trace:bool -> Pbft.Adversary.behavior -> report * Pbft.Cluster.t
(** Run one behavior with the cluster behind the {!Webgate.Frontdoor}:
    open-loop sessions through the door's coalescing/admission-control
    path instead of direct closed-loop clients. Progress (baseline,
    recovery) is measured at the door — the view change must still vote
    the faulty primary out and requests must keep completing through the
    gateway. Reported as ["gateway-<behavior>"]. *)

val run_crash_restart :
  ?seed:int -> ?trace:bool -> ?speculative:bool -> unit -> report * Pbft.Cluster.t
(** Crash the view-0 primary mid-run, let the survivors elect view 1 and
    keep committing, then restart it: the revived instance must reload
    its disk checkpoint, re-key ([rejoin_key_refresh]), rejoin via a
    Merkle-diff state transfer that fetches strictly fewer pages than a
    full transfer, catch up to the working view with the watchdog
    backoff reset, and leave journals and states in agreement. Reported
    as ["crash-restart"] (["crash-restart-spec"] with [speculative]). *)

val run_vc_mid_speculation : ?seed:int -> ?trace:bool -> unit -> report * Pbft.Cluster.t
(** The speculation-specific scenario: commit datagrams are dropped on
    every link for a window, so pipelined replicas speculatively execute
    batches they cannot commit; the resulting view change must roll the
    speculated suffix back ([fr_rollbacks > 0]) and, once the drop heals,
    the re-proposed batches must commit with journals and states still in
    agreement. *)

val run_all : ?seed:int -> ?speculative:bool -> unit -> (report * Pbft.Cluster.t) list
(** The behavior suite plus {!run_crash_restart}; with [speculative] the
    pipelined variants plus {!run_vc_mid_speculation} appended. *)

val journals_agree : Pbft.Replica.t list -> string list
(** Pairwise committed-journal agreement over common sequence numbers;
    returns human-readable conflicts (empty = safe). Exposed for reuse
    by long-horizon drivers ({!Churn}). *)

val states_agree : Pbft.Replica.t list -> string list
(** Pairwise Merkle-root agreement between replicas at the same executed
    sequence number; returns mismatches (empty = safe). *)

val render : report -> string
(** One status line per scenario, with failure reasons appended. *)

val failure_trace : Pbft.Cluster.t -> string
(** Human-readable dump of the cluster's message trace — written to an
    artifact when a scenario fails in CI (pair with
    [run_behavior ~trace:true]). *)
