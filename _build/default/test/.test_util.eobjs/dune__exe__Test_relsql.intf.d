test/test_relsql.mli:
