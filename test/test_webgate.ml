(* Tests for the §3.3.3 web support: the JSON codec and the browser ->
   bridge -> replica path. *)

let qcheck = QCheck_alcotest.to_alcotest


(* --- JSON --- *)

let test_json_parse_basics () =
  Alcotest.(check string) "null" "null" (Webgate.Json.print (Webgate.Json.parse "null"));
  Alcotest.(check string) "true" "true" (Webgate.Json.print (Webgate.Json.parse " true "));
  Alcotest.(check string) "num" "42" (Webgate.Json.print (Webgate.Json.parse "42"));
  Alcotest.(check string) "neg float" "-2.5" (Webgate.Json.print (Webgate.Json.parse "-2.5"));
  Alcotest.(check string) "string" {|"hi"|} (Webgate.Json.print (Webgate.Json.parse {|"hi"|}));
  Alcotest.(check string) "array" "[1,2,3]" (Webgate.Json.print (Webgate.Json.parse "[ 1 , 2, 3 ]"));
  Alcotest.(check string) "object" {|{"a":1,"b":[true,null]}|}
    (Webgate.Json.print (Webgate.Json.parse {| { "a" : 1, "b": [true, null] } |}))

let test_json_escapes () =
  let v = Webgate.Json.parse {|"line\nquote\"back\\slash\tuA"|} in
  Alcotest.(check string) "unescaped" "line\nquote\"back\\slash\tuA" (Webgate.Json.to_string_exn v);
  (* Re-printing escapes again and reparses to the same value. *)
  Alcotest.(check string) "roundtrip" (Webgate.Json.to_string_exn v)
    (Webgate.Json.to_string_exn (Webgate.Json.parse (Webgate.Json.print v)))

let test_json_errors () =
  List.iter
    (fun src ->
      match Webgate.Json.parse src with
      | exception Webgate.Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error: %s" src)
    [ ""; "{"; "[1,"; {|"unterminated|}; "tru"; "{1:2}"; "[1] trailing"; "{\"a\" 1}" ]

let test_json_accessors () =
  let v = Webgate.Json.parse {|{"s":"x","n":3,"b":false,"o":{"inner":1}}|} in
  Alcotest.(check string) "member str" "x" (Webgate.Json.to_string_exn (Webgate.Json.member "s" v));
  Alcotest.(check int) "member int" 3 (Webgate.Json.to_int_exn (Webgate.Json.member "n" v));
  Alcotest.(check bool) "member bool" false (Webgate.Json.to_bool_exn (Webgate.Json.member "b" v));
  Alcotest.(check bool) "member_opt none" true (Webgate.Json.member_opt "zzz" v = None);
  Alcotest.check_raises "shape mismatch" (Webgate.Json.Parse_error "expected string") (fun () ->
      ignore (Webgate.Json.to_string_exn (Webgate.Json.member "n" v)))

let test_json_bytes_armor () =
  let raw = "\x00\xff\"\\ binary \n" in
  let v = Webgate.Json.of_bytes raw in
  Alcotest.(check string) "roundtrip" raw (Webgate.Json.bytes_exn (Webgate.Json.parse (Webgate.Json.print v)))

let json_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Webgate.Json.Null;
        map (fun b -> Webgate.Json.Bool b) bool;
        map (fun n -> Webgate.Json.Num (float_of_int n)) small_signed_int;
        map (fun s -> Webgate.Json.Str s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      oneof
        [
          leaf;
          map (fun l -> Webgate.Json.Arr l) (list_size (int_bound 4) (tree (depth - 1)));
          map
            (fun l -> Webgate.Json.Obj (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) l))
            (list_size (int_bound 4) (tree (depth - 1)));
        ]
  in
  tree 3

let prop_json_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300 (QCheck.make json_gen) (fun v ->
      Webgate.Json.parse (Webgate.Json.print v) = v)

let prop_json_pretty_roundtrip =
  QCheck.Test.make ~name:"pretty/parse roundtrip" ~count:200 (QCheck.make json_gen) (fun v ->
      Webgate.Json.parse (Webgate.Json.pretty v) = v)

(* --- browser through bridges --- *)

let web_cluster ?classify_readonly cfg =
  let cluster = Pbft.Cluster.create ~seed:21 ~num_clients:1 ~service:(Pbft.Service.counter ()) cfg in
  Simnet.Trace.set_enabled (Pbft.Cluster.trace cluster) false;
  let engine = Pbft.Cluster.engine cluster in
  let net = Pbft.Cluster.net cluster in
  let bridges =
    List.init cfg.Pbft.Config.n (fun i ->
        Webgate.Gateway.Bridge.attach ~cfg ~costs:Pbft.Costmodel.default ~engine ~net ~replica:i)
  in
  let rng = Util.Rng.create 99 in
  let browser =
    Webgate.Gateway.Browser.create ~cfg ~costs:Pbft.Costmodel.default ~engine ~net ~addr:7777
      ?classify_readonly
      ~signer:(Crypto.Keychain.make Crypto.Keychain.Simulated rng ~id:7777)
      ~registry:
        (* The browser library does not verify replica messages beyond
           quorum agreement; an empty verifier set suffices here. *)
        { Pbft.Replica.reg_verifiers = [||]; reg_group_secret = ""; reg_static_clients = [] }
      ()
  in
  (cluster, bridges, browser)

let test_browser_join_and_invoke () =
  let cfg = { (Pbft.Config.default ~f:1) with Pbft.Config.dynamic_clients = true } in
  let cluster, bridges, browser = web_cluster cfg in
  let joined = ref None in
  Webgate.Gateway.Browser.join browser ~idbuf:"webuser:pw" (fun c -> joined := c);
  Pbft.Cluster.run cluster ~seconds:10.0;
  (match !joined with
  | Some _ -> ()
  | None -> Alcotest.fail "browser join failed");
  let results = ref [] in
  let rec go n =
    if n <= 3 then Webgate.Gateway.Browser.invoke browser "incr" (fun r -> results := r :: !results; go (n + 1))
  in
  go 1;
  Pbft.Cluster.run cluster ~seconds:10.0;
  Alcotest.(check (list string)) "sequential increments over JSON" [ "1"; "2"; "3" ]
    (List.rev !results);
  Alcotest.(check bool) "bridges translated frames" true
    (List.for_all (fun b -> Webgate.Gateway.Bridge.frames_translated b > 0) bridges)

let test_browser_readonly () =
  let cfg = { (Pbft.Config.default ~f:1) with Pbft.Config.dynamic_clients = true } in
  let cluster, _bridges, browser = web_cluster cfg in
  let got = ref "" in
  Webgate.Gateway.Browser.join browser ~idbuf:"webuser:pw" (fun _ ->
      Webgate.Gateway.Browser.invoke browser "incr" (fun _ ->
          Webgate.Gateway.Browser.invoke browser ~readonly:true "get" (fun r -> got := r)));
  Pbft.Cluster.run cluster ~seconds:15.0;
  Alcotest.(check string) "read-only over JSON" "1" !got

let test_browser_classified_readonly () =
  let cfg = { (Pbft.Config.default ~f:1) with Pbft.Config.dynamic_clients = true } in
  (* The counter service's "get" is read-only; teach the browser to prove
     it so the caller does not have to pass ~readonly:true. *)
  let cluster, _bridges, browser = web_cluster ~classify_readonly:(String.equal "get") cfg in
  let got = ref "" in
  Webgate.Gateway.Browser.join browser ~idbuf:"webuser:pw" (fun _ ->
      Webgate.Gateway.Browser.invoke browser "incr" (fun _ -> ()));
  (* Run to quiescence first: the browser's quorum can complete before
     the slowest replica executes the ordered incr, so snapshotting
     inside the callback would blame that straggler on the get. *)
  Pbft.Cluster.run cluster ~seconds:15.0;
  let ordered_after_incr = Array.map Pbft.Replica.executed_requests (Pbft.Cluster.replicas cluster) in
  Webgate.Gateway.Browser.invoke browser "get" (fun r -> got := r);
  Pbft.Cluster.run cluster ~seconds:5.0;
  Alcotest.(check string) "classified read over JSON" "1" !got;
  (* The classified "get" must ride the fast path: no replica ordered and
     executed it as a normal request. *)
  let ordered_now = Array.map Pbft.Replica.executed_requests (Pbft.Cluster.replicas cluster) in
  Alcotest.(check (array int)) "no ordered execution for the classified read"
    ordered_after_incr ordered_now

let test_bridge_rejects_garbage () =
  let cfg = { (Pbft.Config.default ~f:1) with Pbft.Config.dynamic_clients = true } in
  let cluster, bridges, _browser = web_cluster cfg in
  let net = Pbft.Cluster.net cluster in
  Simnet.Net.send net ~src:7777 ~dst:(Webgate.Gateway.bridge_addr 0) "not json at all";
  Simnet.Net.send net ~src:7777 ~dst:(Webgate.Gateway.bridge_addr 0) {|{"type":"nonsense"}|};
  Pbft.Cluster.run cluster ~seconds:1.0;
  Alcotest.(check int) "rejected" 2 (Webgate.Gateway.Bridge.rejected (List.hd bridges))

let () =
  Alcotest.run "webgate"
    [
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "binary armour" `Quick test_json_bytes_armor;
          qcheck prop_json_roundtrip;
          qcheck prop_json_pretty_roundtrip;
        ] );
      ( "browser",
        [
          Alcotest.test_case "join + invoke over JSON (§3.3.3)" `Slow test_browser_join_and_invoke;
          Alcotest.test_case "read-only over JSON" `Slow test_browser_readonly;
          Alcotest.test_case "classifier routes reads to fast path" `Slow
            test_browser_classified_readonly;
          Alcotest.test_case "bridge rejects garbage" `Quick test_bridge_rejects_garbage;
        ] );
    ]
