lib/pbft/types.ml:
