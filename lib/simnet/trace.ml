type entry = { time : float; src : int; dst : int; label : string; detail : string; size : int }

type t = {
  mutable items : entry list; (* newest first *)
  mutable n : int;
  capacity : int;
  mutable on : bool;
}

let create ?(capacity = 100_000) () = { items = []; n = 0; capacity; on = true }
let enabled t = t.on
let set_enabled t v = t.on <- v

let record t e =
  if t.on then begin
    t.items <- e :: t.items;
    t.n <- t.n + 1;
    if t.n > t.capacity * 2 then begin
      (* Amortized trim: keep the newest [capacity]. *)
      t.items <- List.filteri (fun i _ -> i < t.capacity) t.items;
      t.n <- t.capacity
    end
  end

let entries t = List.rev (List.filteri (fun i _ -> i < t.capacity) t.items)

let clear t =
  t.items <- [];
  t.n <- 0

let count t = t.n
let filter t pred = List.filter pred (entries t)

let render ?(limit = 200) t pred =
  let buf = Buffer.create 1024 in
  let rows = filter t pred in
  let rows = List.filteri (fun i _ -> i < limit) rows in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (* Human-facing dump only; nothing downstream hashes or parses it. *)
        (Printf.sprintf "%10.6fs  %3d -> %3d  %-16s %5dB  %s\n" e.time e.src e.dst e.label e.size
           e.detail
         [@detlint.allow float_format]))
    rows;
  Buffer.contents buf
