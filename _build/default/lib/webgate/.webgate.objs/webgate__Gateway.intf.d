lib/webgate/gateway.mli: Crypto Pbft Simnet
