type addr = int

type profile = {
  latency : float;
  jitter : float;
  bandwidth : float;
  loss : float;
  recv_buffer : int;
}

(* Ping RTT on the paper's cluster is ~150 µs, so ~75 µs one-way; iperf
   showed 938 Mbit/s ≈ 117 MB/s of usable bandwidth. *)
let lan_profile =
  { latency = 120e-6; jitter = 20e-6; bandwidth = 117_000_000.0; loss = 0.0; recv_buffer = 0 }

let wan_profile =
  { latency = 40e-3; jitter = 8e-3; bandwidth = 12_500_000.0; loss = 0.0; recv_buffer = 0 }

type one_shot_drop = { pred : src:addr -> dst:addr -> label:string -> bool; mutable used : bool }

type t = {
  engine : Engine.t;
  trace : Trace.t;
  rng : Util.Rng.t;
  mutable prof : profile;
  handlers : (addr, src:addr -> string -> unit) Hashtbl.t;
  nic_free : (addr, float) Hashtbl.t;
  backlog : (addr, unit -> int) Hashtbl.t;
  mutable drops : one_shot_drop list;
  mutable partitioned : (addr list * addr list) option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
}

let create engine ?trace prof =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  {
    engine;
    trace;
    rng = Util.Rng.split (Engine.rng engine);
    prof;
    handlers = Hashtbl.create 64;
    nic_free = Hashtbl.create 64;
    backlog = Hashtbl.create 64;
    drops = [];
    partitioned = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
  }

let engine t = t.engine
let trace t = t.trace
let register t a h = Hashtbl.replace t.handlers a h
let unregister t a = Hashtbl.remove t.handlers a
let set_loss t p = t.prof <- { t.prof with loss = p }
let loss t = t.prof.loss
let set_backlog_probe t a probe = Hashtbl.replace t.backlog a probe
let drop_next_matching t pred = t.drops <- { pred; used = false } :: t.drops

let partition t ga gb = t.partitioned <- Some (ga, gb)
let heal t = t.partitioned <- None

let crosses_partition t src dst =
  match t.partitioned with
  | None -> false
  | Some (ga, gb) ->
    (List.mem src ga && List.mem dst gb) || (List.mem src gb && List.mem dst ga)

let one_shot_drop_matches t ~src ~dst ~label =
  let rec find = function
    | [] -> false
    | d :: rest ->
      if (not d.used) && d.pred ~src ~dst ~label then begin
        d.used <- true;
        true
      end
      else find rest
  in
  let hit = find t.drops in
  if hit then t.drops <- List.filter (fun d -> not d.used) t.drops;
  hit

(* [detail] is a thunk so senders skip rendering it (a sprintf per
   message) whenever tracing is off — the common case for experiments. *)
let record t ~src ~dst ~label ~detail ~size ~delivered =
  if Trace.enabled t.trace then
    Trace.record t.trace
      {
        time = Engine.now t.engine;
        src;
        dst;
        label = (if delivered then label else label ^ " [LOST]");
        detail = detail ();
        size;
      }

let no_detail () = ""

let send t ?(label = "msg") ?(detail = no_detail) ~src ~dst payload =
  let size = String.length payload in
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  let lost =
    crosses_partition t src dst
    || one_shot_drop_matches t ~src ~dst ~label
    || Util.Rng.bernoulli t.rng t.prof.loss
  in
  if lost then begin
    t.dropped <- t.dropped + 1;
    record t ~src ~dst ~label ~detail ~size ~delivered:false
  end
  else begin
    (* NIC egress serialization: back-to-back sends from one host queue
       behind each other at the configured bandwidth. *)
    let now = Engine.now t.engine in
    let nic = match Hashtbl.find_opt t.nic_free src with Some v -> v | None -> 0.0 in
    let start = Float.max now nic in
    let tx = float_of_int size /. t.prof.bandwidth in
    Hashtbl.replace t.nic_free src (start +. tx);
    let prop =
      Float.max 1e-6 (Util.Rng.gaussian t.rng ~mean:t.prof.latency ~stdev:t.prof.jitter)
    in
    let arrival = start +. tx +. prop in
    record t ~src ~dst ~label ~detail ~size ~delivered:true;
    Engine.schedule_at t.engine ~time:arrival (fun () ->
        match Hashtbl.find_opt t.handlers dst with
        | None -> t.dropped <- t.dropped + 1
        | Some h ->
          let overflow =
            t.prof.recv_buffer > 0
            &&
            match Hashtbl.find_opt t.backlog dst with
            | None -> false
            | Some probe -> probe () >= t.prof.recv_buffer
          in
          if overflow then begin
            t.dropped <- t.dropped + 1;
            if Trace.enabled t.trace then
              Trace.record t.trace
                {
                  time = Engine.now t.engine;
                  src;
                  dst;
                  label = label ^ " [OVERFLOW]";
                  detail = detail ();
                  size;
                }
          end
          else begin
            t.delivered <- t.delivered + 1;
            h ~src payload
          end)
  end

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped
let bytes_sent t = t.bytes
