(** Recursive-descent SQL parser. *)

exception Error of string

val parse : string -> Ast.stmt list
(** Parse one or more ';'-separated statements.
    Raises {!Error} (or {!Lexer.Error}) on malformed input. *)

val parse_one : string -> Ast.stmt
(** Parse exactly one statement. *)
