(** The motivating application (§1): an Internet e-voting service with no
    centralized component, built on the PBFT middleware with the SQL
    state abstraction.

    Election officials create elections and register choices; voters join
    the replicated service dynamically (credential in the Join
    identification buffer), cast exactly one ballot per election —
    enforced inside the replicated database, so all replicas agree — and
    anyone can read progress and tallies through the read-only
    optimization. Every vote row records the primary's agreed timestamp
    and a nonce from the agreed randomness, the fields the paper added to
    check that replies are identical across replicas. *)

(** {1 Server side} *)

val schema : string
(** Tables: elections, choices, ballots. *)

val service : ?acid:bool -> unit -> Pbft.Service.t
(** The replicated service: SQL on the PBFT state region. *)

(** {1 Client-side operation builders}

    All return SQL strings to submit through {!Pbft.Client.invoke}; the
    mutating ones go through full agreement, the reading ones can be sent
    read-only. *)

val create_election_sql : name:string -> string
val add_choice_sql : election:int -> choice:string -> string

val cast_vote_sql : election:int -> voter:string -> choice:string -> string
(** One ballot per (election, voter): an existing ballot makes the insert
    fail deterministically on every replica. *)

val tally_sql : election:int -> string
(** Per-choice counts, descending. *)

val turnout_sql : election:int -> string

(** {1 Reply helpers} *)

val vote_accepted : string -> bool
(** Did a cast-vote reply indicate success? *)
