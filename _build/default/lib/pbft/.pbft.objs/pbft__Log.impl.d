lib/pbft/log.ml: Hashtbl List Message Types
