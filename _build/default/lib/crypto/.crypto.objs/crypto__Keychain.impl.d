lib/crypto/keychain.ml: Bignum Bytes Hmac Option Printf Rabin Sha256 String Util
