lib/crypto/rabin.ml: Bignum Nat Prime Printf Sha256 Util
