(* Access-path selection for single-table statements.

   The planner inspects the top-level AND conjuncts of a WHERE clause for
   sargable comparisons (column op literal) and picks the cheapest access
   path: a direct rowid probe when the INTEGER PRIMARY KEY is pinned, a
   bounded secondary-index scan when an indexed column is constrained, a
   full table scan otherwise. Chosen paths are *supersets*: the caller
   re-evaluates the WHERE clause once per candidate row, so a bound may
   safely overshoot (inclusive where the predicate is strict) but must
   never exclude a matching row.

   Index keys are [Value.key_encode v ^ "\x00" ^ rowid] and sort bytewise,
   which segregates values by type tag (Null < numbers < Text) while
   [Value.compare_sql] — the comparison the predicate actually uses —
   interleaves Int and Real numerically. Bounds therefore have to be
   computed against the *declared* column type, leaning on the storage
   invariants enforced by [coerce] at INSERT/UPDATE time: an INTEGER
   column never holds a Real, a REAL column never holds an Int, and a
   TEXT column holds nothing numeric. *)

type access =
  | Full_scan
  | No_rows  (** a conjunct is provably unsatisfiable, e.g. [col = NULL] *)
  | Pk_probe of int  (** direct rowid lookup in the row tree *)
  | Index_scan of { idx : Catalog.index_def; lo : string option; hi : string option }
      (** bounded scan of a secondary index; [lo]/[hi] are inclusive
          entry-key bounds *)

let col_names (tbl : Catalog.table) =
  List.map (fun (c : Ast.column_def) -> String.lowercase_ascii c.col_name) tbl.tbl_cols

let pk_column (tbl : Catalog.table) =
  List.find_index (fun (c : Ast.column_def) -> c.col_pk && c.col_type = Ast.T_integer) tbl.tbl_cols

(* Coerce a value to a column's declared affinity — the same function the
   write path applies, which is what makes the storage invariants above
   hold. *)
let coerce (c : Ast.column_def) v =
  match (c.col_type, v) with
  | _, Value.Null -> Value.Null
  | Ast.T_integer, Value.Int _ -> v
  | Ast.T_integer, Value.Real f -> Value.Int (int_of_float f)
  | Ast.T_integer, Value.Text s -> (
    match int_of_string_opt s with Some i -> Value.Int i | None -> v)
  | Ast.T_real, Value.Real _ -> v
  | Ast.T_real, Value.Int i -> Value.Real (float_of_int i)
  | Ast.T_real, Value.Text s -> (
    match float_of_string_opt s with Some f -> Value.Real f | None -> v)
  | Ast.T_text, Value.Text _ -> v
  | Ast.T_text, (Value.Int _ | Value.Real _) -> Value.Text (Value.to_string v)

(* Entry-key bounds bracketing every index entry for value [v]: the entry
   key is the encoded value, a NUL separator, then an 8-byte rowid. *)
let key_floor v = Value.key_encode v ^ "\x00"
let key_ceil v = Value.key_encode v ^ "\x00" ^ String.make 8 '\xff'

(* First entry key carrying a non-Null value (Null encodes as "\x00"). *)
let above_null = "\x01"

(* --- constraint extraction --- *)

type constr =
  | C_eq of Value.t
  | C_lower of Value.t * bool  (** bound, inclusive *)
  | C_upper of Value.t * bool
  | C_is_null
  | C_not_null

let flip_op = function "<" -> ">" | "<=" -> ">=" | ">" -> "<" | ">=" -> "<=" | op -> op

let rec conjuncts (e : Ast.expr) acc =
  match e with Ast.Binop ("AND", a, b) -> conjuncts a (conjuncts b acc) | e -> e :: acc

(* NaN is poison: the predicate compares through OCaml's polymorphic
   [compare] (NaN below every float) while [key_encode] sorts NaN above —
   constraints carrying one are simply not used for planning. *)
let usable_lit = function Value.Real f when Float.is_nan f -> false | _ -> true

let constraints_of (where : Ast.expr option) =
  let of_cmp c op v =
    let col = String.lowercase_ascii c in
    match op with
    | "=" -> Some (col, C_eq v)
    | ">" -> Some (col, C_lower (v, false))
    | ">=" -> Some (col, C_lower (v, true))
    | "<" -> Some (col, C_upper (v, false))
    | "<=" -> Some (col, C_upper (v, true))
    | _ -> None
  in
  match where with
  | None -> []
  | Some w ->
    List.filter_map
      (fun (e : Ast.expr) ->
        match e with
        | Ast.Binop (op, Ast.Col (_, c), Ast.Lit v) when usable_lit v -> of_cmp c op v
        | Ast.Binop (op, Ast.Lit v, Ast.Col (_, c)) when usable_lit v -> of_cmp c (flip_op op) v
        | Ast.Is_null (Ast.Col (_, c), positive) ->
          Some (String.lowercase_ascii c, if positive then C_is_null else C_not_null)
        | _ -> None)
      (conjuncts w [])

(* --- bound encoding --- *)

type bound =
  | B_key of string
  | B_empty  (** the constraint excludes every storable value *)

(* Ints are 63-bit; floats this large are outside the exactly-representable
   band anyway, so saturating keeps bounds superset-safe. *)
let int_band = 4.0e18

let number_of v = match Value.as_number v with Some f -> f | None -> 0.0

(* Smallest entry key an index entry of a row satisfying [col >(=) v] can
   have, given the column's declared type. *)
let lower_key (def : Ast.column_def) v incl =
  match v with
  | Value.Null -> B_empty
  | Value.Text s -> B_key (key_floor (Value.Text s))
  | Value.Int _ | Value.Real _ -> (
    let x = number_of v in
    match def.col_type with
    | Ast.T_integer ->
      let m =
        if x > int_band then max_int
        else if x < -.int_band then min_int
        else begin
          let fl = Float.floor x in
          if incl && fl = x then int_of_float x else int_of_float fl + 1
        end
      in
      B_key (key_floor (Value.Int m))
    | Ast.T_real -> B_key (key_floor (Value.Real x))
    | Ast.T_text ->
      (* Text sorts above every number, so all non-Null rows qualify. *)
      B_key above_null)

let upper_key (def : Ast.column_def) v incl =
  match v with
  | Value.Null -> B_empty
  | Value.Text s -> B_key (key_ceil (Value.Text s))
  | Value.Int _ | Value.Real _ -> (
    let x = number_of v in
    match def.col_type with
    | Ast.T_integer ->
      let m =
        if x > int_band then max_int
        else if x < -.int_band then min_int
        else begin
          let fl = Float.floor x in
          if incl || fl <> x then int_of_float fl else int_of_float x - 1
        end
      in
      B_key (key_ceil (Value.Int m))
    | Ast.T_real -> B_key (key_ceil (Value.Real x))
    | Ast.T_text ->
      (* A TEXT column stores only Text/Null, and neither sorts below a
         number: the conjunct is unsatisfiable. *)
      B_empty)

(* --- path selection --- *)

type range_plan =
  | R_empty
  | R_none  (** no usable constraint on this column *)
  | R_range of int * string option * string option  (** score, lo, hi *)

(* Combine every constraint on one column into a single scan range.
   Equality (including IS NULL) dominates; otherwise lower bounds max
   together and upper bounds min together. Any comparison rejects NULL,
   so a range always starts at [above_null] at worst. *)
let range_for (def : Ast.column_def) (cs : constr list) =
  let eq =
    List.find_map
      (function
        | C_eq v -> (
          match coerce def v with Value.Null -> Some B_empty | c -> Some (B_key (key_floor c)))
        | C_is_null -> Some (B_key (key_floor Value.Null))
        | _ -> None)
      cs
  in
  match eq with
  | Some B_empty -> R_empty
  | Some (B_key lo) ->
    (* [lo] is a key_floor; the matching ceiling shares its value prefix. *)
    R_range (3, Some lo, Some (lo ^ String.make 8 '\xff'))
  | None ->
    let lo = ref None and hi = ref None and empty = ref false in
    List.iter
      (fun c ->
        match c with
        | C_lower (v, incl) -> (
          match lower_key def v incl with
          | B_empty -> empty := true
          | B_key k -> lo := Some (match !lo with Some p when p >= k -> p | _ -> k))
        | C_upper (v, incl) -> (
          match upper_key def v incl with
          | B_empty -> empty := true
          | B_key k -> hi := Some (match !hi with Some p when p <= k -> p | _ -> k))
        | C_not_null -> lo := Some (match !lo with Some p when p >= above_null -> p | _ -> above_null)
        | C_eq _ | C_is_null -> ())
      cs;
    if !empty then R_empty
    else begin
      match (!lo, !hi) with
      | None, None -> R_none
      | Some _, Some _ -> R_range (2, !lo, !hi)
      | Some _, None -> R_range (1, !lo, None)
      | None, Some h ->
        (* One-sided upper bound: any comparison still rejects NULLs, so
           start the scan just past them. *)
        R_range (1, Some above_null, Some h)
    end

let choose (tbl : Catalog.table) (where : Ast.expr option) =
  let names = col_names tbl in
  let defs = Array.of_list tbl.tbl_cols in
  let cs =
    (* Keep constraints whose column exists in this table; unknown columns
       are someone else's error to report. *)
    List.filter_map
      (fun (col, c) ->
        match List.find_index (String.equal col) names with
        | Some i -> Some (i, c)
        | None -> None)
      (constraints_of where)
  in
  let provably_empty =
    List.exists
      (fun (_, c) ->
        match c with
        | C_eq Value.Null | C_lower (Value.Null, _) | C_upper (Value.Null, _) -> true
        | _ -> false)
      cs
  in
  if provably_empty then No_rows
  else begin
    let pk =
      match pk_column tbl with
      | None -> None
      | Some pki ->
        List.find_map (fun (i, c) -> match c with C_eq v when i = pki -> Some v | _ -> None) cs
    in
    match pk with
    | Some v -> (
      (* The PK invariant (always Int) makes a failed conversion a proof
         of emptiness, same as the pre-planner behaviour. *)
      match Value.as_int v with Some rowid -> Pk_probe rowid | None -> No_rows)
    | None ->
      let best =
        List.fold_left
          (fun best (idx : Catalog.index_def) ->
            match List.find_index (String.equal (String.lowercase_ascii idx.idx_col)) names with
            | None -> best
            | Some ci -> (
              let on_col = List.filter_map (fun (i, c) -> if i = ci then Some c else None) cs in
              match range_for defs.(ci) on_col with
              | R_none -> best
              | R_empty -> Some (max_int, No_rows)
              | R_range (score, lo, hi) -> (
                match best with
                | Some (s, _) when s >= score -> best
                | _ -> Some (score, Index_scan { idx; lo; hi }))))
          None tbl.Catalog.tbl_indexes
      in
      (match best with Some (_, access) -> access | None -> Full_scan)
  end

let describe = function
  | Full_scan -> "full-scan"
  | No_rows -> "no-rows"
  | Pk_probe rowid -> Printf.sprintf "pk-probe(%d)" rowid
  | Index_scan { idx; lo; hi } ->
    Printf.sprintf "index-scan(%s%s%s)" idx.Catalog.idx_name
      (match lo with Some _ -> ",lo" | None -> "")
      (match hi with Some _ -> ",hi" | None -> "")
