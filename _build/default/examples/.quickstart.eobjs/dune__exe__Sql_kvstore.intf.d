examples/sql_kvstore.mli:
