open Types

type t = {
  cfg : Config.t;
  engine : Simnet.Engine.t;
  net : Simnet.Net.t;
  registry : Replica.registry;
  mutable reps : Replica.t array;
  cls : Client.t array;
  tpk : Crypto.Threshold.public option;
}

let engine t = t.engine
let net t = t.net
let trace t = Simnet.Net.trace t.net
let config t = t.cfg
let replicas t = t.reps
let replica t i = t.reps.(i)
let clients t = t.cls
let client t i = t.cls.(i)

let create ?(seed = 1) ?(profile = Simnet.Net.lan_profile) ?(costs = Costmodel.default)
    ?(num_clients = 12) ?(service = Service.null ()) ?(threshold_replies = false) ?engine ?net
    (cfg : Config.t) =
  (match Config.validate cfg with Ok () -> () | Error e -> invalid_arg ("Cluster.create: " ^ e));
  (* A sharded deployment builds several groups on one shared engine,
     each with its own net (a private address space); a standalone
     cluster builds both itself. *)
  let engine =
    match (engine, net) with
    | Some e, _ -> e
    | None, Some n -> Simnet.Net.engine n
    | None, None -> Simnet.Engine.create ~seed
  in
  let net = match net with Some n -> n | None -> Simnet.Net.create engine profile in
  let rng = Util.Rng.split (Simnet.Engine.rng engine) in
  (* Simulated keys regardless of auth mode: the cost model charges the
     virtual price of the real arithmetic; tests exercise Real mode
     separately (see DESIGN.md, "Substitutions"). *)
  let mode = Crypto.Keychain.Simulated in
  let replica_signers = Array.init cfg.n (fun i -> Crypto.Keychain.make mode rng ~id:i) in
  let client_signers =
    Array.init num_clients (fun i ->
        Crypto.Keychain.make mode rng ~id:(addr_of_client (i + 1)))
  in
  let static_clients =
    if cfg.dynamic_clients then []
    else
      List.init num_clients (fun i ->
          let cid = i + 1 in
          ( cid,
            addr_of_client cid,
            Crypto.Keychain.verifier_to_string (Crypto.Keychain.verifier_of client_signers.(i)) ))
  in
  let registry =
    {
      Replica.reg_verifiers = Array.map Crypto.Keychain.verifier_of replica_signers;
      reg_group_secret = Bytes.to_string (Util.Rng.bytes rng 32);
      reg_static_clients = static_clients;
    }
  in
  (* The §3.3.1 extension: deal an (f+1, n) threshold service key. *)
  let threshold_key =
    if threshold_replies then begin
      let pk, shares = Crypto.Threshold.deal rng ~bits:192 ~threshold:(cfg.f + 1) ~parties:cfg.n in
      Some (pk, Array.of_list shares)
    end
    else None
  in
  let reps =
    Array.init cfg.n (fun i ->
        let threshold =
          Option.map (fun (pk, shares) -> (pk, shares.(i))) threshold_key
        in
        Replica.create ~cfg ~costs ~engine ~net ~id:i ~signer:replica_signers.(i) ~registry
          ~service ?threshold ())
  in
  let tpk = Option.map fst threshold_key in
  let cls =
    Array.init num_clients (fun i ->
        let cid = i + 1 in
        Client.create ~cfg ~costs ~engine ~net ~addr:(addr_of_client cid)
          ~signer:client_signers.(i) ~registry ?threshold_public:tpk
          ?client_id:(if cfg.dynamic_clients then None else Some cid)
          ())
  in
  (* Static mode: distribute the client-chosen MAC session keys out of
     band, as PBFT's configuration files do. *)
  if (not cfg.dynamic_clients) && cfg.use_macs then
    Array.iter
      (fun cl ->
        Array.iter
          (fun rep ->
            Replica.install_session_key rep ~addr:(Client.addr cl)
              (Client.session_key_for cl (Replica.id rep)))
          reps)
      cls;
  { cfg; engine; net; registry; reps; cls; tpk }

let run t ~seconds =
  let target = Simnet.Engine.now t.engine +. seconds in
  Simnet.Engine.run ~until:target t.engine

let run_until_quiet ?(max_seconds = 60.0) t =
  Simnet.Engine.run ~until:(Simnet.Engine.now t.engine +. max_seconds) t.engine

let restart_replica t i =
  t.reps.(i) <- Replica.restart t.reps.(i);
  (* Static mode: the restarted replica lost the client-chosen session
     keys along with the rest of its volatile state; redistribute them
     out of band exactly as the initial configuration did. (Dynamic-mode
     clients live in the membership table, which reloads from the
     restored checkpoint.) *)
  if (not t.cfg.dynamic_clients) && t.cfg.use_macs then
    Array.iter
      (fun cl ->
        Replica.install_session_key t.reps.(i) ~addr:(Client.addr cl)
          (Client.session_key_for cl i))
      t.cls
let crash_replica t i = Replica.crash t.reps.(i)

let total_completed t = Array.fold_left (fun acc c -> acc + Client.completed c) 0 t.cls
let threshold_public t = t.tpk
