examples/dynamic_clients.ml: Array Client Cluster Config List Membership Pbft Printf Replica Service Simnet String
