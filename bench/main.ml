(* The benchmark harness: one regenerator per table and figure of the
   paper (see DESIGN.md's experiment index), plus a Bechamel
   micro-benchmark suite for the primitive costs that motivate the
   virtual cost model.

   Usage:  dune exec bench/main.exe [-- section ... [--quick]]
   Sections: micro bench digest sqlidx pipeline faults openloop shards
             churn table1
             figure1 figure2 figure3 figure4 figure5 acid recovery
             packet-loss nondet wan sizes loss ablation pipesweep all
             (default)
   [sqlidx] compares the indexed point/range SELECT workloads against the
   forced-scan baseline and exits non-zero unless the indexed point
   stream clears 5x the baseline's virtual TPS.
   [pipeline] runs the 64-client null workload serial and with an 8-deep
   agreement pipeline on 4 virtual cores, and exits non-zero unless the
   pipelined run clears 2x both the serial baseline and the Table-1
   default row.
   [bench] measures host wall-clock / events-per-sec / SHA-256 bytes-per-sec
   for the Table-1 and SQL workloads and writes BENCH.json (schema in
   README.md); [--quick] shortens every virtual duration to 0.3 s for CI
   smoke runs. *)

open Bechamel
open Toolkit

(* --- micro benchmarks (P1) --- *)

let kb = String.make 1024 'x'

let micro_tests () =
  let rng = Util.Rng.create 1 in
  let rabin = Crypto.Rabin.generate rng ~bits:384 in
  let rabin_pk = Crypto.Rabin.public rabin in
  let rabin_sig = Crypto.Rabin.sign rabin kb in
  let mac_key = Crypto.Mac.fresh_key rng in
  let auth_keys = List.init 4 (fun i -> (i, Crypto.Mac.fresh_key rng)) in
  let pages = Statemgr.Pages.create ~page_size:4096 ~num_pages:64 () in
  let merkle = Statemgr.Merkle.build pages in
  let sql = Relsql.Database.open_db (Relsql.Vfs.in_memory ~acid:true ~seed:1 ()) in
  ignore (Relsql.Database.exec_exn sql Relsql.Pbft_service.vote_schema);
  let counter = ref 0 in
  let sample_msg =
    {
      Pbft.Message.payload =
        Pbft.Message.Pre_prepare
          {
            pp_view = 0;
            pp_seq = 42;
            pp_batch =
              List.init 12 (fun i ->
                  Pbft.Message.Digest_of
                    {
                      bd_client = i;
                      bd_id = i;
                      bd_digest = Crypto.Sha256.digest (string_of_int i);
                      bd_readonly = false;
                    });
            pp_nondet = "nd";
          };
      auth = Pbft.Message.Authenticated (Crypto.Authenticator.compute ~keys:auth_keys "pb");
    }
  in
  let wire = Pbft.Message.encode sample_msg in
  [
    Test.make ~name:"sha256 1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest kb));
    Test.make ~name:"hmac 1KiB" (Staged.stage (fun () -> Crypto.Hmac.mac ~key:mac_key kb));
    Test.make ~name:"mac tag 1KiB" (Staged.stage (fun () -> Crypto.Mac.compute ~key:mac_key kb));
    Test.make ~name:"authenticator n=4"
      (Staged.stage (fun () -> Crypto.Authenticator.compute ~keys:auth_keys kb));
    Test.make ~name:"rabin-384 sign" (Staged.stage (fun () -> Crypto.Rabin.sign rabin kb));
    Test.make ~name:"rabin-384 verify"
      (Staged.stage (fun () -> Crypto.Rabin.verify rabin_pk kb rabin_sig));
    Test.make ~name:"merkle update 1 page"
      (Staged.stage (fun () ->
           incr counter;
           Statemgr.Pages.write pages ~pos:0 (string_of_int !counter);
           Statemgr.Merkle.update merkle pages [ 0 ]));
    Test.make ~name:"sql insert (in-memory)"
      (Staged.stage (fun () ->
           incr counter;
           Relsql.Database.exec sql
             (Printf.sprintf
                "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('b%d','c',NOW(),RANDOM())"
                !counter)));
    Test.make ~name:"message encode (pre-prepare, batch 12)"
      (Staged.stage (fun () -> Pbft.Message.encode sample_msg));
    Test.make ~name:"message decode" (Staged.stage (fun () -> Pbft.Message.decode wire));
  ]

let run_micro () =
  print_endline "== P1 — primitive costs (Bechamel, host CPU time per op) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name result ->
          let v = Analyze.one ols Instance.monotonic_clock result in
          match Analyze.OLS.estimates v with
          | Some [ est ] -> Printf.printf "  %-42s %12.0f ns/op\n%!" name est
          | Some _ | None -> Printf.printf "  %-42s (no estimate)\n%!" name)
        raw)
    (micro_tests ())

(* --- experiment regenerators --- *)

let duration = ref 1.5
let seed = ref 1
let quick = ref false

let banner name = Printf.printf "\n######## %s ########\n%!" name

(* --- host-time benchmark (BENCH.json) --- *)

let iso8601 () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let run_hostbench () =
  banner "Host-time benchmark (BENCH.json)";
  let dur = if !quick then 0.3 else !duration in
  let print_m (m : Harness.Hostbench.measurement) =
    Printf.printf "  %-32s host %7.3fs  %9.0f ev/s  %7.2f MB/s hashed  vTPS %9.1f\n%!" m.name
      m.host_seconds m.events_per_sec m.hashed_mb_per_sec m.virtual_tps;
    if m.checkpoint_count > 0 then
      Printf.printf
        "  %-32s ckpts %d  undo %d  copied/ckpt %10.0f B  deep-copy/ckpt %10.0f B  (%.1fx)\n%!" ""
        m.checkpoint_count m.undo_snapshots m.bytes_copied_per_checkpoint
        m.deep_copy_bytes_per_checkpoint
        (if m.bytes_copied_per_checkpoint > 0.0 then
           m.deep_copy_bytes_per_checkpoint /. m.bytes_copied_per_checkpoint
         else 0.0)
  in
  let table1 = Harness.Hostbench.table1_workloads ~seed:!seed ~duration:dur () in
  List.iter print_m table1;
  let sql = Harness.Hostbench.sql_workload ~seed:!seed ~duration:dur () in
  print_m sql;
  let ckpt = Harness.Hostbench.ckpt_sql_large ~seed:!seed ~duration:dur () in
  print_m ckpt;
  let idx_point = Harness.Hostbench.sql_indexed_point ~seed:!seed ~duration:dur () in
  print_m idx_point;
  let idx_range = Harness.Hostbench.sql_indexed_range ~seed:!seed ~duration:dur () in
  print_m idx_range;
  let forced = Harness.Hostbench.sql_forced_scan ~seed:!seed ~duration:dur () in
  print_m forced;
  let pipe_serial = Harness.Hostbench.pipeline_serial ~seed:!seed ~duration:dur () in
  print_m pipe_serial;
  let pipe_deep = Harness.Hostbench.pipeline_deep ~seed:!seed ~duration:dur () in
  print_m pipe_deep;
  let read_mix = Harness.Hostbench.sql_read_mix ~seed:!seed ~duration:dur () in
  print_m read_mix;
  (* Representative open-loop front-door rows: steady Poisson load near
     the closed-loop ceiling, and a bursty square wave that exercises the
     deadline flush and queue growth. *)
  let ol_base = Harness.Openloop.default_spec (Pbft.Config.default ~f:1) in
  let ol_poisson =
    Harness.Hostbench.measure_openloop ~name:"openloop:poisson12k"
      {
        ol_base with
        Harness.Openloop.seed = !seed;
        duration = dur;
        arrival = Harness.Openloop.Poisson 12_000.0;
      }
  in
  print_m ol_poisson;
  let ol_bursty =
    Harness.Hostbench.measure_openloop ~name:"openloop:bursty"
      {
        ol_base with
        Harness.Openloop.seed = !seed;
        duration = dur;
        arrival =
          Harness.Openloop.Bursty { base = 2_000.0; burst = 24_000.0; period = 0.2; duty = 0.25 };
      }
  in
  print_m ol_bursty;
  let all =
    table1
    @ [
        sql; ckpt; idx_point; idx_range; forced; pipe_serial; pipe_deep; read_mix; ol_poisson;
        ol_bursty;
      ]
  in
  let json = Harness.Hostbench.to_json ~now:(iso8601 ()) all in
  let oc = open_out "BENCH.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  trace digest: %s\n  wrote BENCH.json (%d workloads)\n%!"
    (Harness.Hostbench.trace_digest ())
    (List.length all)

(* Just the seeded trace digest: cheap enough for CI to run twice and
   diff, pinning simulation determinism without a full bench pass. *)
let run_digest () =
  Printf.printf "trace digest: %s\n%!" (Harness.Hostbench.trace_digest ~seed:!seed ())

(* Access-path comparison with a pass/fail gate: the identical point-
   SELECT stream, indexed versus forced scan, must differ by at least 5x
   in virtual TPS and by an order of magnitude in pages per operation. *)
let run_sqlidx () =
  banner "SQL access paths — indexed vs forced scan";
  let dur = if !quick then 0.3 else !duration in
  let per_op (m : Harness.Hostbench.measurement) v =
    if m.completed > 0 then v /. float_of_int m.completed else 0.0
  in
  let show (m : Harness.Hostbench.measurement) =
    Printf.printf "  %-32s vTPS %9.1f  pages/op %8.1f  rows/op %8.1f\n%!" m.name m.virtual_tps
      (per_op m (float_of_int m.pages_read))
      (per_op m (float_of_int m.rows_scanned))
  in
  let point = Harness.Hostbench.sql_indexed_point ~seed:!seed ~duration:dur () in
  let range = Harness.Hostbench.sql_indexed_range ~seed:!seed ~duration:dur () in
  let forced = Harness.Hostbench.sql_forced_scan ~seed:!seed ~duration:dur () in
  show point;
  show range;
  show forced;
  let speedup =
    if forced.Harness.Hostbench.virtual_tps > 0.0 then
      point.Harness.Hostbench.virtual_tps /. forced.Harness.Hostbench.virtual_tps
    else 0.0
  in
  Printf.printf "  indexed point vs forced scan: %.1fx virtual TPS\n%!" speedup;
  if speedup < 5.0 then begin
    Printf.eprintf "FAIL: indexed point workload is %.1fx the forced-scan baseline (need >= 5x)\n"
      speedup;
    exit 1
  end

(* Byzantine fault scenarios with a pass/fail gate, run twice: serial
   (the PR 5 suite) and with the speculative execution pipeline on,
   which adds the view-change-mid-speculation rollback scenario. On
   failure the failing scenario is re-run with tracing on and the
   message log dumped to faults-trace.txt — the artifact CI uploads. *)
let run_faults () =
  banner "Byzantine fault scenarios (adversarial suite)";
  let check ~speculative results =
    List.iter (fun (r, _) -> Printf.printf "  %s\n%!" (Harness.Faults.render r)) results;
    let failed =
      List.filter (fun ((r : Harness.Faults.report), _) -> r.fr_failures <> []) results
    in
    if failed <> [] then begin
      let (worst, _) = List.hd failed in
      (* Re-run the first failing scenario with the trace enabled so the
         dump actually contains the messages that led to the failure. *)
      let _, cluster =
        let name = worst.Harness.Faults.fr_behavior in
        let find pool pfx =
          List.find_opt
            (fun b -> String.equal (pfx ^ Pbft.Adversary.behavior_name b) name)
            pool
        in
        if String.equal name "crash-restart" || String.equal name "crash-restart-spec" then
          Harness.Faults.run_crash_restart ~seed:!seed ~trace:true ~speculative ()
        else
          match
            (find Harness.Faults.behaviors "", find Harness.Faults.gateway_behaviors "gateway-")
          with
          | Some behavior, _ ->
            Harness.Faults.run_behavior ~seed:!seed ~trace:true ~speculative behavior
          | None, Some behavior ->
            Harness.Faults.run_gateway_behavior ~seed:!seed ~trace:true behavior
          | None, None -> Harness.Faults.run_vc_mid_speculation ~seed:!seed ~trace:true ()
      in
      let oc = open_out "faults-trace.txt" in
      output_string oc
        (Printf.sprintf "behavior: %s (speculative=%b)\nfailures:\n  %s\n\n" worst.fr_behavior
           speculative
           (String.concat "\n  " worst.fr_failures));
      output_string oc (Harness.Faults.failure_trace cluster);
      close_out oc;
      Printf.eprintf "FAIL: %d adversarial scenario(s) failed; trace in faults-trace.txt\n"
        (List.length failed);
      exit 1
    end
  in
  check ~speculative:false (Harness.Faults.run_all ~seed:!seed ());
  Printf.printf "  -- with speculation (pipeline depth 4, 2 cores) --\n%!";
  check ~speculative:true (Harness.Faults.run_all ~seed:!seed ~speculative:true ())

(* Pipelined speculation with the PR 6 acceptance gate: the deep pipeline
   must clear 2x both its own serial baseline (same 64-client workload)
   and the Table-1 default row (12 clients) in virtual TPS. *)
let run_pipeline () =
  banner "Pipelined speculation — serial vs depth 8 x 4 cores";
  let dur = if !quick then 0.3 else !duration in
  let show (m : Harness.Hostbench.measurement) =
    Printf.printf "  %-28s vTPS %9.1f  core util %4.2f  spec execs %7d  rollbacks %d\n%!" m.name
      m.virtual_tps m.core_utilization m.speculative_executions m.rollbacks
  in
  let table1 = Harness.Hostbench.table1_default ~seed:!seed ~duration:dur () in
  let serial = Harness.Hostbench.pipeline_serial ~seed:!seed ~duration:dur () in
  let deep = Harness.Hostbench.pipeline_deep ~seed:!seed ~duration:dur () in
  show table1;
  show serial;
  show deep;
  let ratio b (m : Harness.Hostbench.measurement) =
    if b.Harness.Hostbench.virtual_tps > 0.0 then m.virtual_tps /. b.Harness.Hostbench.virtual_tps
    else 0.0
  in
  Printf.printf "  pipelined vs serial baseline: %.2fx;  vs Table-1 default: %.2fx\n%!"
    (ratio serial deep) (ratio table1 deep);
  if ratio serial deep < 2.0 || ratio table1 deep < 2.0 then begin
    Printf.eprintf
      "FAIL: pipelined throughput is %.2fx the serial baseline / %.2fx Table-1 (need >= 2x both)\n"
      (ratio serial deep) (ratio table1 deep);
    exit 1
  end

(* Open-loop overload sweep with the PR 7 acceptance gates: arrival rate
   x gateway flush size over 10k sessions through the front door. The
   saturated (peak) open-loop vTPS must clear the closed-loop Table-1
   default row, p99 latency at 80% of the saturating rate must stay
   bounded, and the per-request event/allocation budgets must hold — the
   O(1) hot-path refactors are what keep them flat as sessions scale. *)
let run_openloop () =
  banner "Open-loop overload — arrival rate x gateway batch size";
  let dur = if !quick then 0.3 else 1.0 in
  let spec_at ~rate ~flush_bytes =
    let base = Harness.Openloop.default_spec (Pbft.Config.default ~f:1) in
    {
      base with
      Harness.Openloop.seed = !seed;
      duration = dur;
      arrival = Harness.Openloop.Poisson rate;
      gateway = { base.Harness.Openloop.gateway with Webgate.Frontdoor.flush_bytes };
    }
  in
  let show (m : Harness.Hostbench.measurement) =
    Printf.printf
      "  %-28s offered %8.0f/s  vTPS %8.1f  p50 %6.1fms  p99 %7.1fms  shed %6d  gw-peak %5d\n%!"
      m.name m.offered_load m.virtual_tps (m.p50_latency *. 1e3) (m.p99_latency *. 1e3) m.shed
      m.gw_queue_peak
  in
  let rates = [ 2_000.0; 8_000.0; 16_000.0; 32_000.0 ] in
  let flushes = [ 4 * 1024; 16 * 1024 ] in
  let sweep =
    List.concat_map
      (fun flush_bytes ->
        List.map
          (fun rate ->
            let name = Printf.sprintf "openloop:r%.0f_f%dk" rate (flush_bytes / 1024) in
            let m = Harness.Hostbench.measure_openloop ~name (spec_at ~rate ~flush_bytes) in
            show m;
            (rate, flush_bytes, m))
          rates)
      flushes
  in
  let sat_rate, sat_flush, sat =
    match sweep with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun ((_, _, (b : Harness.Hostbench.measurement)) as acc)
             ((_, _, (m : Harness.Hostbench.measurement)) as cand) ->
          if m.virtual_tps > b.virtual_tps then cand else acc)
        first rest
  in
  let closed = Harness.Hostbench.table1_default ~seed:!seed ~duration:dur () in
  Printf.printf "  saturated open-loop vTPS %.1f (rate %.0f/s, flush %dB); closed-loop Table-1 %.1f\n%!"
    sat.Harness.Hostbench.virtual_tps sat_rate sat_flush closed.Harness.Hostbench.virtual_tps;
  (* 80%-of-saturation run: the latency knee should not have been crossed,
     so the tail must stay bounded and the per-request budgets flat. *)
  let backoff =
    Harness.Hostbench.measure_openloop ~name:"openloop:backoff80"
      (spec_at ~rate:(0.8 *. sat_rate) ~flush_bytes:sat_flush)
  in
  show backoff;
  Printf.printf "  backoff80: events/req %.1f  alloc/req %.0fB  sessions %d  evictions %d\n%!"
    backoff.Harness.Hostbench.events_per_request backoff.Harness.Hostbench.alloc_per_request
    backoff.Harness.Hostbench.sessions backoff.Harness.Hostbench.gw_evictions;
  let p99_bound = 0.25 in
  let events_budget = 200.0 in
  let alloc_budget = 2_000_000.0 in
  let failures = ref [] in
  let gate cond msg = if not cond then failures := msg :: !failures in
  gate
    (sat.Harness.Hostbench.virtual_tps >= closed.Harness.Hostbench.virtual_tps)
    (Printf.sprintf "saturated open-loop vTPS %.1f < closed-loop Table-1 default %.1f"
       sat.Harness.Hostbench.virtual_tps closed.Harness.Hostbench.virtual_tps);
  gate
    (backoff.Harness.Hostbench.p99_latency <= p99_bound)
    (Printf.sprintf "p99 at 80%% of saturation %.3fs > %.3fs bound"
       backoff.Harness.Hostbench.p99_latency p99_bound);
  gate
    (backoff.Harness.Hostbench.events_per_request <= events_budget)
    (Printf.sprintf "events/request %.1f > %.1f budget"
       backoff.Harness.Hostbench.events_per_request events_budget);
  gate
    (backoff.Harness.Hostbench.alloc_per_request <= alloc_budget)
    (Printf.sprintf "alloc/request %.0fB > %.0fB budget"
       backoff.Harness.Hostbench.alloc_per_request alloc_budget);
  match !failures with
  | [] -> Printf.printf "  openloop gates: PASS\n%!"
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL: %s\n" f) fs;
    exit 1

(* Sharded PBFT with the PR 8 acceptance gates: virtual TPS versus shard
   count on a purely shardable workload (1/2/4 shards, the 2-shard run
   must clear 1.7x the single-shard baseline), a cross-shard mix row for
   the 2PC tax, and the Byzantine-coordinator-mid-2PC scenario (no shard
   may commit; every prepared shard rolls back via its COW undo
   snapshot). Writes BENCH-shards.json. *)
let run_shards () =
  banner "Sharded PBFT — vTPS vs shard count";
  let dur = if !quick then 0.8 else 2.0 in
  let spec shards =
    {
      (Harness.Shards.default_spec ~shards ()) with
      Harness.Shards.seed = !seed;
      duration = dur;
      warmup = (if !quick then 0.25 else 0.5);
    }
  in
  let show (m : Harness.Hostbench.measurement) =
    Printf.printf
      "  %-24s vTPS %9.1f  p99 %6.1fms  shed %6d  cross %d/%d  shard vTPS [%s]\n%!" m.name
      m.virtual_tps (m.p99_latency *. 1e3) m.shed m.cross_commits m.cross_aborts
      (String.concat "; "
         (Array.to_list (Array.map (fun t -> Printf.sprintf "%.0f" t) m.shard_tps)))
  in
  let sweep =
    List.map
      (fun shards ->
        let m =
          Harness.Hostbench.measure_shards
            ~name:(Printf.sprintf "shards:%d" shards)
            (spec shards)
        in
        show m;
        m)
      [ 1; 2; 4 ]
  in
  (* The 2PC tax, informational: same 2-shard deployment with 10% of
     operations becoming cross-shard transfers. *)
  let crossed =
    Harness.Hostbench.measure_shards ~name:"shards:2_cross10"
      { (spec 2) with Harness.Shards.cross_fraction = 0.1 }
  in
  show crossed;
  let vtps n =
    match List.nth_opt sweep n with
    | Some (m : Harness.Hostbench.measurement) -> m.virtual_tps
    | None -> 0.0
  in
  let ratio2 = if vtps 0 > 0.0 then vtps 1 /. vtps 0 else 0.0 in
  let ratio4 = if vtps 0 > 0.0 then vtps 2 /. vtps 0 else 0.0 in
  Printf.printf "  scaling: 2 shards %.2fx, 4 shards %.2fx the single-shard baseline\n%!" ratio2
    ratio4;
  let byz = Harness.Shards.byzantine_coordinator () in
  print_string (Harness.Shards.render_byz byz);
  let json = Harness.Hostbench.to_json ~now:(iso8601 ()) (sweep @ [ crossed ]) in
  let oc = open_out "BENCH-shards.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH-shards.json (%d workloads)\n%!" (List.length sweep + 1);
  let failures = ref [] in
  let gate cond msg = if not cond then failures := msg :: !failures in
  gate (ratio2 >= 1.7)
    (Printf.sprintf "2-shard vTPS is %.2fx the single-shard baseline (need >= 1.7x)" ratio2);
  gate
    (byz.Harness.Shards.bz_failures = [])
    (Printf.sprintf "Byzantine-coordinator scenario: %s"
       (String.concat "; " byz.Harness.Shards.bz_failures));
  match !failures with
  | [] -> Printf.printf "  shards gates: PASS\n%!"
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL: %s\n" f) fs;
    exit 1

(* Long-horizon churn with the PR 10 acceptance gates: a rolling
   crash/repair plan (every 4th crash takes the current primary) under
   continuous light load, with proactive key refresh running on the
   virtual clock throughout. Availability must clear the 99% floor,
   every rejoin must go through the Merkle-diff transfer, and the diff
   must move strictly fewer pages than a full transfer would. Writes
   BENCH-churn.json. *)
let run_churn () =
  banner "Availability under churn — rolling crash/restart plan";
  let base = Harness.Churn.default_spec () in
  let spec =
    if !quick then { base with Harness.Churn.seed = !seed; horizon = 60.0; crash_period = 12.0 }
    else
      (* Full mode: a virtual hour of churn — a crash every 2.5 minutes
         (24 in all, every 4th taking the current primary), 20-second
         repair windows, proactive key refresh every 10 minutes. Load is
         moderate (~16 req/s): enough that checkpoints advance while a
         victim is down, so every rejoin has a real Merkle diff to
         move, while keeping the hour to a couple of host minutes. *)
      {
        base with
        Harness.Churn.seed = !seed;
        num_clients = 4;
        think_time = 0.25;
        horizon = 3_600.0;
        crash_period = 150.0;
        downtime = 20.0;
        bucket = 10.0;
        cfg = { base.Harness.Churn.cfg with Pbft.Config.key_refresh_period = 600.0 };
      }
  in
  let m, outcome = Harness.Hostbench.measure_churn ~name:"churn:rolling" spec in
  Printf.printf
    "  %-24s host %7.3fs  crashes %d  restarts %d  avail %.4f  mean_rec %.3fs  max_rec %.3fs\n%!"
    m.Harness.Hostbench.name m.host_seconds m.crashes m.restarts m.availability m.mean_recovery
    m.max_recovery;
  Printf.printf "  %-24s rejoin transfers %d  demotion transfers %d  pages %d/%d (diff/full)\n%!"
    "" m.rejoin_transfers m.demotion_transfers m.transfer_pages_fetched m.transfer_pages_full;
  let json = Harness.Hostbench.to_json ~now:(iso8601 ()) [ m ] in
  let oc = open_out "BENCH-churn.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH-churn.json\n%!";
  (* Full mode only: a short availability-vs-crash-rate sweep on the
     60 s spec, for the EXPERIMENTS.md table. Informative, not gated —
     the floor above is the contract. *)
  if not !quick then
    List.iter
      (fun period ->
        let o =
          Harness.Churn.run
            { base with Harness.Churn.seed = !seed; horizon = 60.0; crash_period = period }
        in
        Printf.printf
          "  crash every %5.1fs: avail %.4f  crashes %d  mean_rec %.3fs  max_rec %.3fs\n%!"
          period o.Harness.Churn.ch_availability o.Harness.Churn.ch_crashes
          o.Harness.Churn.ch_mean_recovery o.Harness.Churn.ch_max_recovery)
      [ 30.0; 12.0; 6.0 ];
  let failures = ref [] in
  let gate cond msg = if not cond then failures := msg :: !failures in
  gate
    (m.Harness.Hostbench.availability >= 0.99)
    (Printf.sprintf "availability %.4f under churn is below the 0.99 floor"
       m.Harness.Hostbench.availability);
  gate
    (m.Harness.Hostbench.restarts = m.Harness.Hostbench.crashes && m.Harness.Hostbench.crashes > 0)
    (Printf.sprintf "crash plan incomplete: %d crashes, %d restarts" m.Harness.Hostbench.crashes
       m.Harness.Hostbench.restarts);
  gate
    (m.Harness.Hostbench.rejoin_transfers >= m.Harness.Hostbench.restarts)
    (Printf.sprintf "only %d rejoin transfers for %d restarts" m.Harness.Hostbench.rejoin_transfers
       m.Harness.Hostbench.restarts);
  gate
    (m.Harness.Hostbench.transfer_pages_full > 0
    && m.Harness.Hostbench.transfer_pages_fetched < m.Harness.Hostbench.transfer_pages_full)
    (Printf.sprintf "Merkle diff saved nothing: fetched %d of %d pages"
       m.Harness.Hostbench.transfer_pages_fetched m.Harness.Hostbench.transfer_pages_full);
  List.iter
    (fun f -> gate false (Printf.sprintf "churn run: %s" f))
    outcome.Harness.Churn.ch_failures;
  match !failures with
  | [] -> Printf.printf "  churn gates: PASS\n%!"
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL: %s\n" f) fs;
    exit 1

let sections : (string * (unit -> unit)) list =
  [
    ("micro", run_micro);
    ("bench", run_hostbench);
    ("digest", run_digest);
    ("sqlidx", run_sqlidx);
    ("pipeline", run_pipeline);
    ("faults", run_faults);
    ("openloop", run_openloop);
    ("shards", run_shards);
    ("churn", run_churn);
    ( "figure1",
      fun () ->
        banner "Figure 1 — normal-case operation";
        print_string (Harness.Experiments.figure1 ~seed:!seed ()) );
    ( "figure2",
      fun () ->
        banner "Figure 2 — dynamic client join";
        print_string (Harness.Experiments.figure2 ~seed:!seed ()) );
    ( "figure3",
      fun () ->
        banner "Figure 3 — SQLite-VFS inside PBFT";
        print_string (Harness.Experiments.figure3 ~seed:!seed ()) );
    ( "table1",
      fun () ->
        banner "Table 1";
        print_string
          (Harness.Report.render (Harness.Experiments.table1 ~seed:!seed ~duration:!duration ()))
    );
    ( "figure4",
      fun () ->
        banner "Figure 4";
        print_string
          (Harness.Report.render (Harness.Experiments.figure4 ~seed:!seed ~duration:!duration ()))
    );
    ( "figure5",
      fun () ->
        banner "Figure 5";
        print_string
          (Harness.Report.render (Harness.Experiments.figure5 ~seed:!seed ~duration:!duration ()))
    );
    ( "acid",
      fun () ->
        banner "ACID vs No-ACID (§4.2)";
        print_string
          (Harness.Report.render
             (Harness.Experiments.acid_comparison ~seed:!seed ~duration:!duration ())) );
    ( "recovery",
      fun () ->
        banner "Recovery vs rebroadcast period (§2.3)";
        print_string (Harness.Report.render (Harness.Experiments.recovery ~seed:!seed ())) );
    ( "packet-loss",
      fun () ->
        banner "Single datagram loss (§2.4)";
        print_string (Harness.Report.render (Harness.Experiments.packet_loss ~seed:!seed ())) );
    ( "nondet",
      fun () ->
        banner "Non-determinism validation vs replay (§2.5)";
        print_string
          (Harness.Report.render (Harness.Experiments.nondet_validation ~seed:!seed ())) );
    ( "wan",
      fun () ->
        banner "Wide-area deployment (§3.3.3)";
        print_string
          (Harness.Report.render (Harness.Experiments.wan ~seed:!seed ~duration:!duration ())) );
    ( "sizes",
      fun () ->
        banner "Payload size sweep (§4.1)";
        print_string
          (Harness.Report.render
             (Harness.Experiments.payload_sweep ~seed:!seed ~duration:!duration ())) );
    ( "loss",
      fun () ->
        banner "Loss sweep (robustness vs optimization)";
        print_string
          (Harness.Report.render (Harness.Experiments.loss_sweep ~seed:!seed ())) );
    ( "ablation",
      fun () ->
        banner "Batching ablation";
        print_string
          (Harness.Report.render
             (Harness.Experiments.batching_ablation ~seed:!seed ~duration:!duration ())) );
    ( "pipesweep",
      fun () ->
        banner "Pipelining sweep — vTPS vs depth x cores";
        print_string
          (Harness.Report.render
             (Harness.Experiments.pipeline_sweep ~seed:!seed ~duration:!duration ())) );
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let wanted =
    List.filter
      (function
        | "--quick" ->
          quick := true;
          false
        | "all" -> false
        | _ -> true)
      args
  in
  if !quick then duration := 0.3;
  let run_all = wanted = [] in
  (* figure4 duplicates table1's sweep; skip it in the default run. *)
  let default_skip = [ "figure4" ] in
  List.iter
    (fun (name, f) ->
      if (run_all && not (List.mem name default_skip)) || List.mem name wanted then f ())
    sections
