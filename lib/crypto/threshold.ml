open Bignum

type public = { n : Nat.t; e : Nat.t; parties : int; threshold : int; delta : int }
type share = { idx : int; value_s : Nat.t }
type partial = { party : int; value : Nat.t }

let share_index sh = sh.idx
let threshold_of pk = pk.threshold
let parties_of pk = pk.parties

let rec factorial k = if k <= 1 then 1 else k * factorial (k - 1)

let generate_safe_prime rng ~bits =
  let rec go () =
    let p' = Prime.generate rng ~bits:(bits - 1) in
    let p = Nat.add (Nat.shift_left p' 1) Nat.one in
    if Prime.is_probable_prime ~rounds:15 rng p then (p, p') else go ()
  in
  go ()

let deal rng ~bits ~threshold ~parties =
  if threshold < 1 || parties < threshold then invalid_arg "Threshold.deal";
  if parties > 20 then invalid_arg "Threshold.deal: too many parties (Δ overflow)";
  let half = bits / 2 in
  let p, p' = generate_safe_prime rng ~bits:half in
  let rec distinct () =
    let q, q' = generate_safe_prime rng ~bits:half in
    if Nat.equal p q then distinct () else (q, q')
  in
  let q, q' = distinct () in
  let n = Nat.mul p q in
  let m = Nat.mul p' q' in
  let e = Nat.of_int 65537 in
  let d = match Nat.mod_inverse e m with Some d -> d | None -> assert false in
  let shamir_shares = Shamir.split rng ~field:m ~threshold ~shares:parties d in
  (* Note: m is not prime, but Shamir.split only evaluates the polynomial
     (no inversion), so sharing over Z_m is sound; reconstruction happens
     in the exponent with integer Lagrange coefficients. *)
  let pk = { n; e; parties; threshold; delta = factorial parties } in
  (pk, List.map (fun (s : Shamir.share) -> { idx = s.index; value_s = s.value }) shamir_shares)

(* Hash into Q_n: square the hash value so the base lands in the subgroup
   of quadratic residues, whose exponent divides m. *)
let hash_to_qn n msg =
  let h1 = Sha256.digest ("thresh-1|" ^ msg) and h2 = Sha256.digest ("thresh-2|" ^ msg) in
  let h = Nat.rem (Nat.of_bytes_be (h1 ^ h2)) n in
  Nat.mod_mul h h n

let partial_sign pk sh msg =
  let x = hash_to_qn pk.n msg in
  let exponent = Nat.mul (Nat.of_int (2 * pk.delta)) sh.value_s in
  { party = sh.idx; value = Nat.mod_exp x exponent pk.n }

(* Integer Lagrange coefficient λ_i = Δ · Π_{j∈S, j≠i} j / (j − i); the
   factorial factor makes it an integer (standard lemma). *)
let integer_lagrange delta indices i =
  let num = ref delta and den = ref 1 in
  List.iter
    (fun j ->
      if j <> i then begin
        num := !num * j;
        den := !den * (j - i)
      end)
    indices;
  assert (!num mod !den = 0);
  !num / !den

(* Extended gcd on native ints: returns (g, a, b) with a·x + b·y = g. *)
let rec ext_gcd x y = if y = 0 then (x, 1, 0) else begin
    let g, a, b = ext_gcd y (x mod y) in
    (g, b, a - (x / y * b))
  end

let pow_signed base exp n =
  if exp >= 0 then Nat.mod_exp base (Nat.of_int exp) n
  else begin
    match Nat.mod_inverse base n with
    | Some inv -> Nat.mod_exp inv (Nat.of_int (-exp)) n
    | None -> failwith "Threshold: base not invertible (hash hit a factor)"
  end

let verify pk msg signature =
  let x = hash_to_qn pk.n msg in
  Nat.equal (Nat.mod_exp signature pk.e pk.n) x

let combine pk msg partials =
  (* Deduplicate by party, keep the first [threshold]. *)
  let seen = Hashtbl.create 8 in
  let distinct =
    List.filter
      (fun p ->
        if Hashtbl.mem seen p.party then false
        else begin
          Hashtbl.add seen p.party ();
          true
        end)
      partials
  in
  if List.length distinct < pk.threshold then None
  else begin
    let chosen = List.filteri (fun i _ -> i < pk.threshold) distinct in
    let indices = List.map (fun p -> p.party) chosen in
    let x = hash_to_qn pk.n msg in
    (* w = Π σ_i^{2λ_i} = x^{4Δ²d}. *)
    let w =
      List.fold_left
        (fun acc p ->
          let lam = integer_lagrange pk.delta indices p.party in
          Nat.mod_mul acc (pow_signed p.value (2 * lam) pk.n) pk.n)
        Nat.one chosen
    in
    (* e' = 4Δ²; Bezout a·e' + b·e = 1, then s = w^a · x^b satisfies s^e = x. *)
    let e' = 4 * pk.delta * pk.delta in
    let e_int = Nat.to_int pk.e in
    let g, a, b = ext_gcd e' e_int in
    if g <> 1 then None
    else begin
      let s = Nat.mod_mul (pow_signed w a pk.n) (pow_signed x b pk.n) pk.n in
      if verify pk msg s then Some s else None
    end
  end

let partial_to_string p =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.W.varint w p.party;
      Util.Codec.W.lstring w (Nat.to_bytes_be p.value))
    ()

let partial_of_string s =
  match
    Util.Codec.decode
      (fun r ->
        let party = Util.Codec.R.varint r in
        let value = Nat.of_bytes_be (Util.Codec.R.lstring r) in
        { party; value })
      s
  with
  | p -> Some p
  | exception Util.Codec.R.Truncated -> None

let signature_to_string s = Nat.to_bytes_be s

let signature_of_string s = if String.equal s "" then None else Some (Nat.of_bytes_be s)

let public_to_string pk =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.W.lstring w (Nat.to_bytes_be pk.n);
      Util.Codec.W.lstring w (Nat.to_bytes_be pk.e);
      Util.Codec.W.varint w pk.parties;
      Util.Codec.W.varint w pk.threshold;
      Util.Codec.W.varint w pk.delta)
    ()

let public_of_string s =
  match
    Util.Codec.decode
      (fun r ->
        let n = Nat.of_bytes_be (Util.Codec.R.lstring r) in
        let e = Nat.of_bytes_be (Util.Codec.R.lstring r) in
        let parties = Util.Codec.R.varint r in
        let threshold = Util.Codec.R.varint r in
        let delta = Util.Codec.R.varint r in
        { n; e; parties; threshold; delta })
      s
  with
  | pk -> Some pk
  | exception Util.Codec.R.Truncated -> None
