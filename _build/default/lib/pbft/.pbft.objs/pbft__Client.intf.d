lib/pbft/client.mli: Config Costmodel Crypto Replica Simnet Types Util
