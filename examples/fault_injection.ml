(* Fault injection tour: the §2.3/§2.4 pathologies plus a primary failure
   driving a view change.

   Run with:  dune exec examples/fault_injection.exe *)

open Pbft

let section title = Printf.printf "\n=== %s ===\n" title

let closed_loop cluster =
  let stop = ref false in
  Array.iter
    (fun cl ->
      let rec loop _ = if not !stop then Client.invoke cl (String.make 512 'x') loop in
      loop "")
    (Cluster.clients cluster);
  stop

let () =
  (* 1. Replica restart under MAC authenticators (§2.3): the recovering
     replica is deaf until session keys are rebroadcast. *)
  section "replica restart (authenticator loss, §2.3)";
  let cfg = { (Config.default ~f:1) with Config.authenticator_rebroadcast = 1.0 } in
  let cluster = Cluster.create ~seed:5 ~num_clients:4 cfg in
  let stop = closed_loop cluster in
  Cluster.run cluster ~seconds:1.0;
  Printf.printf "t=1.0s restarting replica 2\n";
  Cluster.restart_replica cluster 2;
  Cluster.run cluster ~seconds:4.0;
  stop := true;
  let r2 = Cluster.replica cluster 2 in
  (match Replica.recovery_completed_at r2 with
  | Some t -> Printf.printf "replica 2 resumed at t=%.2fs (stall %.2fs, auth failures %d)\n" t (t -. 1.0)
                (Replica.auth_failures r2)
  | None -> print_endline "replica 2 never recovered (unexpected)");

  (* 2. One lost datagram stalls a replica until the next checkpoint
     (§2.4). *)
  section "big-request body loss (§2.4)";
  let cluster = Cluster.create ~seed:6 ~num_clients:4 (Config.default ~f:1) in
  let stop = closed_loop cluster in
  Simnet.Engine.schedule (Cluster.engine cluster) ~delay:0.5 (fun () ->
      print_endline "t=0.5s dropping one client->replica-3 request datagram";
      ignore
        (Simnet.Net.drop_next_matching (Cluster.net cluster) (fun ~src ~dst ~label ->
             src >= Types.client_addr_base && dst = 3 && label = "request")));
  Cluster.run cluster ~seconds:3.0;
  stop := true;
  let r3 = Cluster.replica cluster 3 in
  Printf.printf "replica 3: state transfers=%d (stalled until checkpoint, then caught up)\n"
    (Replica.state_transfers r3);

  (* 3. Primary crash: backups time out and elect a new primary. *)
  section "primary failure -> view change";
  let cfg = { (Config.default ~f:1) with Config.view_change_timeout = 0.5 } in
  let cluster = Cluster.create ~seed:8 ~num_clients:4 cfg in
  let stop = closed_loop cluster in
  Cluster.run cluster ~seconds:0.5;
  print_endline "t=0.5s killing the primary (replica 0)";
  Replica.shutdown (Cluster.replica cluster 0);
  Cluster.run cluster ~seconds:4.0;
  stop := true;
  Array.iter
    (fun r ->
      if Replica.id r <> 0 then
        Printf.printf "replica %d: view=%d (primary is now replica %d), executed=%d\n"
          (Replica.id r) (Replica.view r)
          (Types.primary_of_view ~n:4 (Replica.view r))
          (Replica.executed_requests r))
    (Cluster.replicas cluster);
  let completed = Cluster.total_completed cluster in
  Printf.printf "client requests completed across the fault: %d\n" completed
