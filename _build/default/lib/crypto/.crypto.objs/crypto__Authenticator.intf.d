lib/crypto/authenticator.mli: Mac Util
