lib/pbft/replica.mli: Config Costmodel Crypto Membership Service Simnet Statemgr Types
