test/test_bignum.ml: Alcotest Bignum List Nat Prime Printf QCheck QCheck_alcotest Util
