(** Binary min-heap keyed by float priority, with insertion-order
    tie-breaking so that simultaneous simulation events fire in a
    deterministic order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push t priority v] inserts [v]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element; ties break in
    insertion order. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
