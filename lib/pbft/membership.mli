(** Dynamic client membership (§3.1).

    Client entries live logically in the replicated state: every mutation
    is applied at request-execution time (so all replicas agree), and the
    table serializes into the middleware's partition of the state region
    so that checkpoints digest it and state transfer restores it.

    The redirection table maps an arbitrary external client identifier to
    the node-table slot, so an incoming request is dismissed cheaply when
    its identifier is unknown, before any signature work. Joins carry an
    application identification buffer; the application maps it to an
    identity, and the middleware guarantees a single live session per
    identity by terminating older ones. When the table is full, sessions
    idle longer than the staleness threshold (by primary-clock time) are
    cleaned up; if none are stale the join is denied. *)

open Types

type entry = {
  me_client : client_id;
  me_addr : int;  (** network address *)
  me_pubkey : string;  (** wire encoding of the client's verifier *)
  mutable me_last_active : float;
      (** primary-clock time of last executed request. Update only via
          {!touch} — the staleness agenda is keyed by this value, so a
          direct write would desynchronize O(stale) cleanup. *)
  me_identity : string option;  (** application identity (dynamic joins only) *)
}

type t

val create : max_clients:int -> dynamic:bool -> t

val populate_static : t -> (client_id * int * string) list -> unit
(** Install the a-priori client table of a static deployment
    [(client, addr, pubkey)]. *)

val lookup : t -> client_id -> entry option
(** The redirection-table lookup performed on every incoming request. *)

val lookup_addr : t -> int -> client_id option

type join_outcome =
  | Joined of { client : client_id; terminated : client_id list }
  | Table_full

val join :
  t -> addr:int -> pubkey:string -> identity:string -> now:float -> stale_threshold:float ->
  join_outcome
[@@trust.sink "membership-table mutation (client admission)"]
(** Deterministic join executed as an ordered system request; [now] is the
    primary's request timestamp, not local time. *)

val leave : t -> client_id -> bool
[@@trust.sink "membership-table mutation (client removal)"]
val touch : t -> client_id -> float -> unit
(** Record request execution time for staleness accounting. O(log n):
    repositions the entry in the last-active agenda that {!join}'s
    stale cleanup pops from. *)

val count : t -> int
val capacity : t -> int
val is_dynamic : t -> bool
val clients : t -> client_id list

val serialize : t -> string
(** Canonical encoding written into the state region after mutations. *)

val load : t -> string -> unit
[@@trust.sink "membership-table replacement from a serialized image"]
(** Replace the table contents from a serialized image (state transfer). *)
