examples/evoting_demo.mli:
