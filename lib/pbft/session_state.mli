(** Library-level session state (§3.3.2).

    The paper: PBFT "purposely ignores the notion of client-specific
    state", forcing stateful applications to manage session identifiers
    by hand; with dynamic sign-on "a library-level subsystem can be
    developed that will map parts of the state to a specific session".
    This module is that subsystem: a per-client key→value store living in
    its own partition of the replicated state region (so it is
    checkpointed, digested and transferred like everything else), with
    sessions wiped when membership terminates them.

    Deterministic by construction: all mutations happen inside request
    execution, and the serialized image is canonical. *)

open Types

type t

val create : Statemgr.Pages.t -> first_page:int -> pages:int -> t
(** Bind a store to [pages] pages of the region starting at
    [first_page]; reads the existing image if one is present (replica
    restart / state transfer). *)

val get : t -> client:client_id -> key:string -> string option

val set : t -> client:client_id -> key:string -> string -> unit
[@@trust.sink "session-state write into the replicated region"]
(** Raises [Failure] if the partition is full. *)

val remove : t -> client:client_id -> key:string -> unit
[@@trust.sink "session-state removal in the replicated region"]

val end_session : t -> client:client_id -> unit
(** Drop everything the session stored — invoked by the middleware when a
    membership change terminates the session. *)

val session_keys : t -> client:client_id -> string list
val sessions : t -> client_id list

val pages_needed : int
(** Suggested partition size (8 pages). *)
