lib/simdisk/disk.ml: Bytes Hashtbl String
