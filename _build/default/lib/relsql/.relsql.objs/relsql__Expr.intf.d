lib/relsql/expr.mli: Ast Value
