lib/crypto/mac.ml: Bytes Char Hmac String Util
