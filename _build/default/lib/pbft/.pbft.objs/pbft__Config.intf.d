lib/pbft/config.mli:
