lib/statemgr/pages.mli:
