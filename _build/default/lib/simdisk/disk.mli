(** Simulated stable storage with crash semantics.

    PBFT treats replica memory as stable storage by assuming UPSes (§1);
    the paper argues an Internet voting service cannot, and wires SQLite's
    rollback journal to real disk instead. This module gives the
    simulation that disk: buffered writes live in a volatile overlay until
    [sync] makes them durable, and [crash] discards everything volatile.
    Write and sync latencies are surfaced as costs the owning node charges
    to its virtual CPU, so the ACID experiments (Fig. 5, §4.2) are
    disk-bound exactly as in the paper. *)

type t
(** One node's disk. *)

val create : ?write_latency_per_byte:float -> ?sync_latency:float -> unit -> t
(** Defaults model a 2011-era SATA disk with write-back cache:
    negligible buffered-write cost, ~1.3 ms to flush the cache. *)

type file

val open_file : t -> string -> file
(** Opens (creating if absent) the named file; reopening after a crash
    yields the durable image. *)

val exists : t -> string -> bool
val delete : t -> string -> unit
(** Deletion is durable immediately (models unlink + directory sync). *)

val size : file -> int
(** Current (volatile) size in bytes. *)

val read : file -> pos:int -> len:int -> string
(** Reads through the volatile overlay; zero-filled beyond EOF within the
    requested range is an error — raises [Invalid_argument] if
    [pos + len] exceeds the size. *)

val write : file -> pos:int -> string -> unit
(** Buffered write, extending the file if needed. *)

val truncate : file -> int -> unit

val sync : file -> unit
(** Make all buffered writes durable. *)

val sync_cost : t -> float
(** Virtual seconds a [sync] costs the caller. *)

val write_cost : t -> int -> float
(** Virtual seconds a buffered write of n bytes costs the caller. *)

val crash : t -> unit
(** Discard all volatile state on every file of this disk. *)

val sync_count : t -> int
val bytes_written : t -> int
