let bindings ?(cmp = Stdlib.compare) tbl =
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  (* [Hashtbl.fold] yields same-key bindings most-recent-first; the sort
     is stable, so that sub-order survives. *)
  List.stable_sort (fun (a, _) (b, _) -> cmp a b) l

let keys ?cmp tbl = List.map fst (bindings ?cmp tbl)
let iter ?cmp f tbl = List.iter (fun (k, v) -> f k v) (bindings ?cmp tbl)
let fold ?cmp f tbl init = List.fold_left (fun acc (k, v) -> f k v acc) init (bindings ?cmp tbl)
