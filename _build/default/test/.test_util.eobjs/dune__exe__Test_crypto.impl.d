test/test_crypto.ml: Alcotest Bignum Bytes Crypto Lazy List Option Printf QCheck QCheck_alcotest String Util
