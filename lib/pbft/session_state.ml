open Types

(* The whole store serializes as one canonical sorted structure re-written
   on every mutation: small, simple, and exactly as deterministic as the
   rest of the execution path. The image lives behind a fixed-width
   length header, mirroring the membership partition.

   Hot-path shape: the decoded table is cached as a map keyed by
   (client, key), so [get] is O(log n) instead of the old
   decode-everything-then-scan O(n). The cache is invalidated by the
   region's {!Statemgr.Pages.generation} counter, which every wholesale
   page install (state transfer, checkpoint restore, speculation
   rollback) bumps — the external rewrites the old per-call re-read
   existed to observe. Mutations still re-encode the full canonical
   image; writes are not the open-loop hot path, reads are. *)

module M = Map.Make (struct
  type t = client_id * string

  let compare (c1, k1) (c2, k2) =
    let c = Int.compare c1 c2 in
    if c <> 0 then c else String.compare k1 k2
end)

type t = {
  pages : Statemgr.Pages.t;
  base : int;
  capacity : int;
  mutable map : string M.t;
  mutable cached_gen : int;  (** Pages.generation the cache was decoded at; -1 = never *)
}

let pages_needed = 8

let encode map =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.W.varint w (M.cardinal map);
      M.iter
        (fun (c, k) v ->
          Util.Codec.W.varint w c;
          Util.Codec.W.lstring w k;
          Util.Codec.W.lstring w v)
        map)
    ()

let decode image =
  Util.Codec.decode
    (fun r ->
      Util.Codec.R.list r (fun r ->
          let c = Util.Codec.R.varint r in
          let k = Util.Codec.R.lstring r in
          let v = Util.Codec.R.lstring r in
          (c, k, v)))
    image

let reload t =
  let hdr = Statemgr.Pages.read t.pages ~pos:t.base ~len:8 in
  (match int_of_string_opt (String.trim hdr) with
  | Some len when len > 0 -> begin
    match decode (Statemgr.Pages.read t.pages ~pos:(t.base + 8) ~len) with
    | entries ->
      (t.map <- List.fold_left (fun m (c, k, v) -> M.add (c, k) v m) M.empty entries)
      [@trustlint.allow
        "the image is read back from the replicated state region, which only \
         ordered executions write and which state transfer repopulates solely \
         under quorum-certified checkpoint digests (Statemgr merkle proofs)"]
    | exception Util.Codec.R.Truncated -> t.map <- M.empty
  end
  | Some _ | None -> t.map <- M.empty);
  t.cached_gen <- Statemgr.Pages.generation t.pages

(* Re-decode only when the region changed under us: state transfer and
   rollback install pages wholesale and bump the generation; our own
   [store] writes leave it alone and keep the cache authoritative. *)
let refresh t =
  if t.cached_gen <> Statemgr.Pages.generation t.pages then reload t

let store t =
  let image = encode t.map in
  let total = 8 + String.length image in
  if total > t.capacity then failwith "Session_state: partition full";
  Statemgr.Pages.notify_modify t.pages ~pos:t.base ~len:total;
  Statemgr.Pages.write t.pages ~pos:t.base (Printf.sprintf "%07d " (String.length image));
  Statemgr.Pages.write t.pages ~pos:(t.base + 8) image;
  t.cached_gen <- Statemgr.Pages.generation t.pages

let create pages ~first_page ~pages:npages =
  let page_size = Statemgr.Pages.page_size pages in
  let t =
    {
      pages;
      base = first_page * page_size;
      capacity = npages * page_size;
      map = M.empty;
      cached_gen = -1;
    }
  in
  reload t;
  t

let get t ~client ~key =
  refresh t;
  M.find_opt (client, key) t.map

let set t ~client ~key value =
  refresh t;
  t.map <- M.add (client, key) value t.map;
  store t

let remove t ~client ~key =
  refresh t;
  t.map <- M.remove (client, key) t.map;
  store t

(* All entries of one client: the map is ordered by (client, key), so
   this walks exactly the client's contiguous range. *)
let client_range t ~client =
  let rec take seq acc =
    match seq () with
    | Seq.Cons (((c, k), v), rest) when c = client -> take rest ((k, v) :: acc)
    | Seq.Cons _ | Seq.Nil -> List.rev acc
  in
  take (M.to_seq_from (client, "") t.map) []

let end_session t ~client =
  refresh t;
  let doomed = client_range t ~client in
  if doomed <> [] then begin
    t.map <- List.fold_left (fun m (k, _) -> M.remove (client, k) m) t.map doomed;
    store t
  end

let session_keys t ~client =
  refresh t;
  List.map fst (client_range t ~client)

let sessions t =
  refresh t;
  List.rev (M.fold (fun (c, _) _ acc -> match acc with
      | c' :: _ when c' = c -> acc
      | _ -> c :: acc)
      t.map [])
