lib/statemgr/checkpoint.mli: Merkle Pages
