examples/fault_injection.ml: Array Client Cluster Config Pbft Printf Replica Simnet String Types
