lib/crypto/threshold.ml: Bignum Hashtbl List Nat Prime Sha256 Shamir Util
