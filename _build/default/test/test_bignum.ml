(* Tests for the arbitrary-precision arithmetic under the Rabin scheme. *)

open Bignum

let qcheck = QCheck_alcotest.to_alcotest

let pair2 a b = QCheck.pair a b

(* Random Nat of up to ~300 bits, via a seeded generator inside qcheck. *)
let nat_big =
  QCheck.map
    (fun (seed, bits) ->
      let rng = Util.Rng.create seed in
      Nat.random_bits rng (1 + (abs bits mod 300)))
    (QCheck.pair QCheck.int QCheck.int)

let check_nat msg expected actual =
  Alcotest.(check string) msg (Nat.to_hex expected) (Nat.to_hex actual)

(* --- basics --- *)

let test_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (Nat.to_int (Nat.of_int n)))
    [ 0; 1; 2; 1000; 1 lsl 25; 1 lsl 26; (1 lsl 26) + 5; 1 lsl 52; max_int ];
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative") (fun () ->
      ignore (Nat.of_int (-1)))

let test_compare () =
  Alcotest.(check int) "0 = 0" 0 (Nat.compare Nat.zero Nat.zero);
  Alcotest.(check bool) "1 < 2" true (Nat.compare Nat.one Nat.two < 0);
  Alcotest.(check bool) "big > small" true
    (Nat.compare (Nat.of_int (1 lsl 40)) (Nat.of_int 5) > 0);
  Alcotest.(check bool) "equal" true (Nat.equal (Nat.of_int 12345) (Nat.of_int 12345))

let test_add_sub_known () =
  check_nat "add carries" (Nat.of_int (1 lsl 26)) (Nat.add (Nat.of_int ((1 lsl 26) - 1)) Nat.one);
  check_nat "sub borrows" (Nat.of_int ((1 lsl 26) - 1)) (Nat.sub (Nat.of_int (1 lsl 26)) Nat.one);
  Alcotest.check_raises "negative result" (Invalid_argument "Nat.sub: negative result")
    (fun () -> ignore (Nat.sub Nat.one Nat.two))

let test_mul_known () =
  check_nat "small" (Nat.of_int 391) (Nat.mul (Nat.of_int 17) (Nat.of_int 23));
  let big = Nat.of_hex "ffffffffffffffff" in
  (* (2^64-1)^2 = 2^128 - 2^65 + 1 *)
  check_nat "big square" (Nat.of_hex "fffffffffffffffe0000000000000001") (Nat.mul big big)

let test_divmod_known () =
  let q, r = Nat.divmod (Nat.of_int 100) (Nat.of_int 7) in
  Alcotest.(check int) "q" 14 (Nat.to_int q);
  Alcotest.(check int) "r" 2 (Nat.to_int r);
  Alcotest.check_raises "by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:300 (pair2 nat_big nat_big) (fun (a, b) ->
      Nat.equal a (Nat.sub (Nat.add a b) b))

let prop_mul_commutative =
  QCheck.Test.make ~name:"a*b = b*a" ~count:300 (pair2 nat_big nat_big) (fun (a, b) ->
      Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_divmod_invariant =
  QCheck.Test.make ~name:"a = q*b + r, r < b" ~count:500 (pair2 nat_big nat_big) (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.compare r b < 0 && Nat.equal a (Nat.add (Nat.mul q b) r))

let prop_shift_is_mul_pow2 =
  QCheck.Test.make ~name:"a<<k = a*2^k" ~count:200
    (pair2 nat_big QCheck.small_nat)
    (fun (a, k) ->
      let k = k mod 100 in
      Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.mod_exp Nat.two (Nat.of_int k) (Nat.shift_left Nat.one 400))))

let prop_shift_right_inverse =
  QCheck.Test.make ~name:"(a<<k)>>k = a" ~count:300
    (pair2 nat_big QCheck.small_nat)
    (fun (a, k) ->
      let k = k mod 120 in
      Nat.equal a (Nat.shift_right (Nat.shift_left a k) k))

let test_bit_length () =
  Alcotest.(check int) "0" 0 (Nat.bit_length Nat.zero);
  Alcotest.(check int) "1" 1 (Nat.bit_length Nat.one);
  Alcotest.(check int) "255" 8 (Nat.bit_length (Nat.of_int 255));
  Alcotest.(check int) "256" 9 (Nat.bit_length (Nat.of_int 256));
  Alcotest.(check int) "2^100" 101 (Nat.bit_length (Nat.shift_left Nat.one 100))

(* --- modular arithmetic --- *)

let test_mod_exp_known () =
  (* 3^100 mod 101 = 1 by Fermat (101 prime). *)
  check_nat "fermat" Nat.one
    (Nat.mod_exp (Nat.of_int 3) (Nat.of_int 100) (Nat.of_int 101));
  check_nat "base case" Nat.one (Nat.mod_exp (Nat.of_int 7) Nat.zero (Nat.of_int 13))

let prop_mod_exp_matches_naive =
  QCheck.Test.make ~name:"mod_exp vs naive" ~count:100
    QCheck.(triple small_nat small_nat small_nat)
    (fun (b, e, m) ->
      let m = m + 2 and e = e mod 40 in
      let naive = ref 1 in
      for _ = 1 to e do
        naive := !naive * b mod m
      done;
      Nat.to_int (Nat.mod_exp (Nat.of_int b) (Nat.of_int e) (Nat.of_int m)) = !naive)

let prop_mod_inverse =
  QCheck.Test.make ~name:"a * a^-1 = 1 (mod m)" ~count:300 (pair2 nat_big nat_big)
    (fun (a, m) ->
      QCheck.assume (Nat.compare m Nat.two > 0);
      let a = Nat.rem a m in
      match Nat.mod_inverse a m with
      | Some inv -> Nat.equal (Nat.mod_mul a inv m) (Nat.rem Nat.one m)
      | None -> Nat.is_zero a || not (Nat.equal (Nat.gcd a m) Nat.one))

let test_gcd_known () =
  Alcotest.(check int) "gcd(48,18)" 6 (Nat.to_int (Nat.gcd (Nat.of_int 48) (Nat.of_int 18)));
  Alcotest.(check int) "gcd(17,31)" 1 (Nat.to_int (Nat.gcd (Nat.of_int 17) (Nat.of_int 31)))

(* Jacobi symbol vs Euler's criterion for an odd prime. *)
let test_jacobi_euler () =
  let p = 1009 in
  let pn = Nat.of_int p in
  for a = 1 to 60 do
    let jac = Nat.jacobi (Nat.of_int a) pn in
    let euler = Nat.to_int (Nat.mod_exp (Nat.of_int a) (Nat.of_int ((p - 1) / 2)) pn) in
    let expected = if euler = 1 then 1 else if euler = p - 1 then -1 else 0 in
    Alcotest.(check int) (Printf.sprintf "(%d/%d)" a p) expected jac
  done

(* --- encodings --- *)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes_be roundtrip" ~count:300 nat_big (fun a ->
      Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:300 nat_big (fun a ->
      Nat.equal a (Nat.of_hex (Nat.to_hex a)))

let test_bytes_padding () =
  let v = Nat.of_int 258 in
  Alcotest.(check string) "padded" "\x00\x00\x01\x02" (Nat.to_bytes_be ~pad:4 v)

(* --- randomness --- *)

let test_random_below_bounds () =
  let rng = Util.Rng.create 42 in
  let bound = Nat.of_hex "123456789abcdef0" in
  for _ = 1 to 500 do
    let v = Nat.random_below rng bound in
    if Nat.compare v bound >= 0 then Alcotest.fail "random_below out of range"
  done

(* --- primality --- *)

let test_known_primes () =
  let rng = Util.Rng.create 1 in
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "%d prime" p) true
        (Prime.is_probable_prime rng (Nat.of_int p)))
    [ 2; 3; 5; 17; 257; 65537; 104729 ]

let test_known_composites () =
  let rng = Util.Rng.create 1 in
  (* 561, 1105, 1729 are Carmichael numbers: Fermat liars, caught by MR. *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "%d composite" c) false
        (Prime.is_probable_prime rng (Nat.of_int c)))
    [ 0; 1; 4; 100; 561; 1105; 1729; 65536 ]

let test_generated_prime_properties () =
  let rng = Util.Rng.create 5 in
  let p = Prime.generate rng ~bits:96 in
  Alcotest.(check int) "bit length" 96 (Nat.bit_length p);
  Alcotest.(check bool) "probable prime" true (Prime.is_probable_prime rng p)

let test_blum_prime () =
  let rng = Util.Rng.create 6 in
  let p = Prime.generate_blum rng ~bits:96 in
  Alcotest.(check int) "3 mod 4" 3 (Nat.to_int (Nat.rem p (Nat.of_int 4)));
  Alcotest.(check bool) "prime" true (Prime.is_probable_prime rng p)

let () =
  Alcotest.run "bignum"
    [
      ( "basics",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "add/sub known" `Quick test_add_sub_known;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "divmod known" `Quick test_divmod_known;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          qcheck prop_add_sub_inverse;
          qcheck prop_mul_commutative;
          qcheck prop_divmod_invariant;
          qcheck prop_shift_is_mul_pow2;
          qcheck prop_shift_right_inverse;
        ] );
      ( "modular",
        [
          Alcotest.test_case "mod_exp known" `Quick test_mod_exp_known;
          Alcotest.test_case "gcd known" `Quick test_gcd_known;
          Alcotest.test_case "jacobi vs euler" `Quick test_jacobi_euler;
          qcheck prop_mod_exp_matches_naive;
          qcheck prop_mod_inverse;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "bytes padding" `Quick test_bytes_padding;
          qcheck prop_bytes_roundtrip;
          qcheck prop_hex_roundtrip;
        ] );
      ( "random",
        [ Alcotest.test_case "random_below bounds" `Quick test_random_below_bounds ] );
      ( "primality",
        [
          Alcotest.test_case "known primes" `Quick test_known_primes;
          Alcotest.test_case "known composites (incl. Carmichael)" `Quick test_known_composites;
          Alcotest.test_case "generated prime" `Quick test_generated_prime_properties;
          Alcotest.test_case "Blum prime" `Quick test_blum_prime;
        ] );
    ]
