(* Tests for the paged state region, Merkle tree and checkpoints. *)

let qcheck = QCheck_alcotest.to_alcotest

let make_pages ?(strict = false) ?(num_pages = 16) () =
  Statemgr.Pages.create ~strict ~page_size:256 ~num_pages ()

(* --- pages --- *)

let test_pages_rw () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:10 "hello";
  Alcotest.(check string) "read back" "hello" (Statemgr.Pages.read p ~pos:10 ~len:5);
  Alcotest.(check string) "zeros elsewhere" "\000\000" (Statemgr.Pages.read p ~pos:100 ~len:2)

let test_pages_cross_page_write () =
  let p = make_pages () in
  let s = String.init 300 (fun i -> Char.chr (i mod 256)) in
  Statemgr.Pages.write p ~pos:200 s;
  Alcotest.(check string) "spans pages" s (Statemgr.Pages.read p ~pos:200 ~len:300);
  Alcotest.(check (list int)) "both pages dirty" [ 0; 1 ] (Statemgr.Pages.dirty p)

let test_pages_bounds () =
  let p = make_pages () in
  Alcotest.check_raises "oob read" (Invalid_argument "Pages: out of bounds") (fun () ->
      ignore (Statemgr.Pages.read p ~pos:(16 * 256) ~len:1));
  Alcotest.check_raises "oob write" (Invalid_argument "Pages: out of bounds") (fun () ->
      Statemgr.Pages.write p ~pos:(16 * 256 - 1) "ab")

(* §3.2's "havoc caused by a misbehaving application which fails to
   notify the library before modifying memory": strict mode turns the
   violation into an exception. *)
let test_pages_strict_contract () =
  let p = make_pages ~strict:true () in
  Alcotest.check_raises "unnotified write" (Statemgr.Pages.Unnotified_write 0) (fun () ->
      Statemgr.Pages.write p ~pos:0 "x");
  Statemgr.Pages.notify_modify p ~pos:0 ~len:1;
  Statemgr.Pages.write p ~pos:0 "x";
  Alcotest.(check string) "after notify ok" "x" (Statemgr.Pages.read p ~pos:0 ~len:1);
  (* The notification covers only its pages. *)
  Alcotest.check_raises "other page still protected" (Statemgr.Pages.Unnotified_write 3)
    (fun () -> Statemgr.Pages.write p ~pos:(3 * 256) "y")

let test_pages_dirty_tracking () =
  let p = make_pages () in
  Alcotest.(check (list int)) "clean" [] (Statemgr.Pages.dirty p);
  Statemgr.Pages.notify_modify p ~pos:600 ~len:10;
  Alcotest.(check (list int)) "notify marks" [ 2 ] (Statemgr.Pages.dirty p);
  Statemgr.Pages.write p ~pos:0 "a";
  Alcotest.(check (list int)) "write marks" [ 0; 2 ] (Statemgr.Pages.dirty p);
  Statemgr.Pages.clear_dirty p;
  Alcotest.(check (list int)) "cleared" [] (Statemgr.Pages.dirty p)

let test_pages_sparse_allocation () =
  let p = make_pages ~num_pages:1000 () in
  Alcotest.(check int) "nothing allocated" 0 (Statemgr.Pages.allocated_pages p);
  Statemgr.Pages.write p ~pos:(500 * 256) "x";
  Alcotest.(check int) "one page materialized" 1 (Statemgr.Pages.allocated_pages p)

let test_pages_copy_isolated () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:0 "orig";
  let q = Statemgr.Pages.copy p in
  Statemgr.Pages.write p ~pos:0 "mut!";
  Alcotest.(check string) "copy unchanged" "orig" (Statemgr.Pages.read q ~pos:0 ~len:4)

let test_pages_load_page () =
  let p = make_pages () in
  let img = String.make 256 'z' in
  Statemgr.Pages.load_page p 3 img;
  Alcotest.(check string) "installed" img (Statemgr.Pages.page p 3);
  Alcotest.check_raises "size mismatch" (Invalid_argument "Pages.load_page: size mismatch")
    (fun () -> Statemgr.Pages.load_page p 0 "short")

(* The copy-on-write snapshots must be observationally identical to a
   deep-copy reference model: live region = string array, snapshot = full
   copy of it. Ops: write / take snapshot / restore from any snapshot /
   load_page, in arbitrary interleavings. *)
let prop_cow_matches_deep_copy_model =
  let num_pages = 8 and page_size = 256 in
  let model_write model ~pos s =
    String.iteri
      (fun i c ->
        let p = (pos + i) / page_size and o = (pos + i) mod page_size in
        Bytes.set model.(p) o c)
      s
  in
  QCheck.Test.make ~name:"COW snapshots = deep-copy model" ~count:200
    QCheck.(small_list (triple small_nat small_nat small_string))
    (fun ops ->
      let live = Statemgr.Pages.create ~page_size ~num_pages () in
      let model = Array.init num_pages (fun _ -> Bytes.make page_size '\000') in
      (* (COW snapshot, deep-copied model at the same instant) pairs *)
      let snaps = ref [] in
      let agree () =
        List.init num_pages (fun i -> Statemgr.Pages.page live i)
        = (Array.to_list model |> List.map Bytes.to_string)
      in
      List.for_all
        (fun (kind, b, content) ->
          (match kind mod 4 with
          | 0 ->
            let page = b mod num_pages in
            let content = if content = "" then "w" else content in
            let content =
              String.sub content 0 (min (String.length content) (page_size - 1))
            in
            let pos = (page * page_size) + (b mod (page_size - String.length content)) in
            Statemgr.Pages.write live ~pos content;
            model_write model ~pos content
          | 1 ->
            snaps :=
              (Statemgr.Pages.snapshot live, Array.map Bytes.copy model) :: !snaps
          | 2 -> (
            match !snaps with
            | [] -> ()
            | l ->
              let snap, msnap = List.nth l (b mod List.length l) in
              for i = 0 to num_pages - 1 do
                Statemgr.Pages.restore_page live snap i;
                Bytes.blit msnap.(i) 0 model.(i) 0 page_size
              done)
          | _ ->
            let page = b mod num_pages in
            let img =
              String.init page_size (fun i ->
                  if i < String.length content then content.[i] else 'L')
            in
            Statemgr.Pages.load_page live page img;
            model_write model ~pos:(page * page_size) img);
          agree ())
        ops
      && List.for_all
           (fun (snap, msnap) ->
             List.init num_pages (fun i -> Statemgr.Pages.snapshot_page snap i)
             = (Array.to_list msnap |> List.map Bytes.to_string))
           !snaps)

(* --- merkle --- *)

let test_merkle_root_changes () =
  let p = make_pages () in
  let t = Statemgr.Merkle.build p in
  let r0 = Statemgr.Merkle.root t in
  Statemgr.Pages.write p ~pos:0 "x";
  Statemgr.Merkle.update t p [ 0 ];
  let r1 = Statemgr.Merkle.root t in
  Alcotest.(check bool) "root changed" false (String.equal r0 r1)

let prop_merkle_update_equals_rebuild =
  QCheck.Test.make ~name:"incremental update = full rebuild" ~count:100
    QCheck.(small_list (pair small_nat small_string))
    (fun writes ->
      let p = make_pages () in
      let t = Statemgr.Merkle.build p in
      List.iter
        (fun (page, content) ->
          let page = page mod 16 in
          let content = if content = "" then "x" else content in
          let content = String.sub content 0 (min 200 (String.length content)) in
          Statemgr.Pages.write p ~pos:(page * 256) content;
          Statemgr.Merkle.update t p [ page ])
        writes;
      String.equal (Statemgr.Merkle.root t) (Statemgr.Merkle.root (Statemgr.Merkle.build p)))

let prop_merkle_diff_finds_changes =
  QCheck.Test.make ~name:"diff finds exactly the changed pages" ~count:100
    QCheck.(small_list small_nat)
    (fun pages_to_change ->
      let changed = List.sort_uniq compare (List.map (fun i -> i mod 16) pages_to_change) in
      let a = make_pages () in
      let ta = Statemgr.Merkle.build a in
      let b = make_pages () in
      List.iter (fun page -> Statemgr.Pages.write b ~pos:(page * 256) "CHANGED") changed;
      let tb = Statemgr.Merkle.build b in
      let divergent, visited = Statemgr.Merkle.diff ta tb in
      divergent = changed && visited >= 1)

let test_merkle_diff_identical () =
  let p = make_pages () in
  let t = Statemgr.Merkle.build p in
  let divergent, visited = Statemgr.Merkle.diff t (Statemgr.Merkle.copy t) in
  Alcotest.(check (list int)) "no divergence" [] divergent;
  Alcotest.(check int) "only root visited" 1 visited

let test_merkle_leaf_access () =
  let p = make_pages () in
  let t = Statemgr.Merkle.build p in
  Alcotest.(check int) "leaves" 16 (Statemgr.Merkle.num_leaves t);
  Alcotest.check_raises "oob leaf" (Invalid_argument "Merkle.leaf") (fun () ->
      ignore (Statemgr.Merkle.leaf t 16))

let test_merkle_non_power_of_two () =
  let p = Statemgr.Pages.create ~page_size:64 ~num_pages:5 () in
  let t = Statemgr.Merkle.build p in
  Statemgr.Pages.write p ~pos:(4 * 64) "tail";
  Statemgr.Merkle.update t p [ 4 ];
  Alcotest.(check bool) "rebuild agrees" true
    (String.equal (Statemgr.Merkle.root t) (Statemgr.Merkle.root (Statemgr.Merkle.build p)))

(* --- checkpoints --- *)

let test_checkpoint_roundtrip () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:0 "state at 10";
  let t = Statemgr.Merkle.build p in
  let ck = Statemgr.Checkpoint.take ~seqno:10 p t in
  Alcotest.(check int) "seqno" 10 (Statemgr.Checkpoint.seqno ck);
  Alcotest.(check string) "root matches" (Statemgr.Merkle.root t) (Statemgr.Checkpoint.root ck);
  (* Mutate, then restore. *)
  Statemgr.Pages.write p ~pos:0 "DIVERGED!!!";
  Statemgr.Pages.write p ~pos:512 "more";
  Statemgr.Merkle.update t p (Statemgr.Pages.dirty p);
  Statemgr.Checkpoint.restore ck p t;
  Alcotest.(check string) "state restored" "state at 10" (Statemgr.Pages.read p ~pos:0 ~len:11);
  Alcotest.(check string) "root restored" (Statemgr.Checkpoint.root ck) (Statemgr.Merkle.root t)

let test_checkpoint_snapshot_isolated () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:0 "before";
  let t = Statemgr.Merkle.build p in
  let ck = Statemgr.Checkpoint.take ~seqno:1 p t in
  Statemgr.Pages.write p ~pos:0 "after!";
  Alcotest.(check string) "snapshot keeps old page" "before"
    (String.sub (Statemgr.Checkpoint.page ck 0) 0 6)

let test_root_of_leaves_matches_tree () =
  let p = make_pages () in
  Statemgr.Pages.write p ~pos:100 "contents";
  Statemgr.Pages.write p ~pos:(5 * 256) "more";
  let t = Statemgr.Merkle.build p in
  let leaves = List.init (Statemgr.Merkle.num_leaves t) (Statemgr.Merkle.leaf t) in
  Alcotest.(check string) "root recomputed from leaves"
    (Statemgr.Merkle.root t)
    (Statemgr.Merkle.root_of_leaves leaves);
  (* Tampering with any single claimed leaf digest changes the root: a
     Byzantine state-transfer peer cannot substitute pages. *)
  let tampered = List.mapi (fun i l -> if i = 5 then String.make 32 'e' else l) leaves in
  Alcotest.(check bool) "tampered leaf detected" false
    (String.equal (Statemgr.Merkle.root t) (Statemgr.Merkle.root_of_leaves tampered));
  Alcotest.(check string) "page digest matches leaf"
    (Statemgr.Merkle.leaf t 5)
    (Statemgr.Merkle.page_digest (Statemgr.Pages.page p 5))

let test_checkpoint_divergent_pages () =
  let p = make_pages () in
  let t = Statemgr.Merkle.build p in
  let ck = Statemgr.Checkpoint.take ~seqno:1 p t in
  Statemgr.Pages.write p ~pos:(2 * 256) "x";
  Statemgr.Pages.write p ~pos:(7 * 256) "y";
  Statemgr.Merkle.update t p (Statemgr.Pages.dirty p);
  let divergent, _ = Statemgr.Checkpoint.divergent_pages ~local:t ck in
  Alcotest.(check (list int)) "exactly the mutated pages" [ 2; 7 ] divergent

(* --- tentative execution undo (speculative execution, §2.2) --- *)

(* A VFS whose main file is a window onto a Pages region (the §3.2
   arrangement), with a heap-backed journal: lets us drive the real
   relational pager across a checkpoint restore. *)
let mem_file () =
  let data = ref Bytes.empty in
  let ensure n =
    if Bytes.length !data < n then begin
      let b = Bytes.make n '\000' in
      Bytes.blit !data 0 b 0 (Bytes.length !data);
      data := b
    end
  in
  {
    Relsql.Vfs.read =
      (fun ~pos ~len ->
        ensure (pos + len);
        Bytes.sub_string !data pos len);
    write =
      (fun ~pos s ->
        ensure (pos + String.length s);
        Bytes.blit_string s 0 !data pos (String.length s));
    sync = (fun () -> ());
    size = (fun () -> Bytes.length !data);
    truncate = (fun n -> data := Bytes.sub !data 0 (min n (Bytes.length !data)));
  }

let pages_vfs pages =
  let capacity = Statemgr.Pages.total_size pages in
  {
    Relsql.Vfs.main =
      {
        Relsql.Vfs.read = (fun ~pos ~len -> Statemgr.Pages.read pages ~pos ~len);
        write =
          (fun ~pos s ->
            Statemgr.Pages.notify_modify pages ~pos ~len:(String.length s);
            Statemgr.Pages.write pages ~pos s);
        sync = (fun () -> ());
        size = (fun () -> capacity);
        truncate = (fun _ -> ());
      };
    journal = Some (mem_file ());
    time = (fun () -> 0.0);
    random = (fun () -> 0L);
    cost = ref 0.0;
  }

(* Tentative execution with COW undo: snapshot, execute (dirtying pages
   through the real SQL pager), then roll back and check that the pages,
   the Merkle root, and the pager's view of the database (via refresh)
   all agree with the pre-speculation state. *)
(* The PR 6 speculation invariant, as a property: executing a speculative
   suffix against a COW undo snapshot, rolling it back, and re-executing
   whatever order actually committed must leave the region with a Merkle
   root identical to a replica that only ever executed the committed
   order serially. Random write batches stand in for request execution —
   the state layer cannot tell the difference. *)
let prop_speculate_rollback_reexecute =
  let num_pages = 8 and page_size = 128 in
  let apply pages tree batch =
    List.iter
      (fun (page, off, byte) ->
        let pos = ((page mod num_pages) * page_size) + (off mod page_size) in
        let s = String.make 1 (Char.chr (byte mod 256)) in
        Statemgr.Pages.notify_modify pages ~pos ~len:1;
        Statemgr.Pages.write pages ~pos s)
      batch;
    Statemgr.Merkle.update tree pages (Statemgr.Pages.dirty pages);
    Statemgr.Pages.clear_dirty pages
  in
  let batch_gen = QCheck.(small_list (triple small_nat small_nat small_nat)) in
  QCheck.Test.make ~name:"speculate -> rollback -> re-execute = serial execution" ~count:200
    QCheck.(triple batch_gen (small_list batch_gen) (small_list batch_gen))
    (fun (prefix, speculated, committed) ->
      (* Pipelined replica: prefix, snapshot, speculate, roll back,
         execute the committed batches. *)
      let pages = Statemgr.Pages.create ~page_size ~num_pages () in
      let tree = Statemgr.Merkle.build pages in
      apply pages tree prefix;
      let undo = Statemgr.Checkpoint.take ~seqno:1 pages tree in
      List.iter (apply pages tree) speculated;
      Statemgr.Checkpoint.restore undo pages tree;
      Statemgr.Pages.clear_dirty pages;
      List.iter (apply pages tree) committed;
      (* Serial replica: the committed order only, no speculation. *)
      let pages' = Statemgr.Pages.create ~page_size ~num_pages () in
      let tree' = Statemgr.Merkle.build pages' in
      apply pages' tree' prefix;
      List.iter (apply pages' tree') committed;
      String.equal (Statemgr.Merkle.root tree) (Statemgr.Merkle.root tree'))

let test_tentative_undo_cow () =
  let pages = Statemgr.Pages.create ~page_size:4096 ~num_pages:32 () in
  let pager = Relsql.Pager.open_pager (pages_vfs pages) in
  let fill tag =
    Relsql.Pager.begin_txn pager;
    let pg = Relsql.Pager.allocate_page pager in
    Relsql.Pager.write_page pager pg (tag ^ String.make (4096 - String.length tag) '.');
    Relsql.Pager.commit pager;
    pg
  in
  let committed_pg = fill "committed" in
  let tree = Statemgr.Merkle.build pages in
  Statemgr.Pages.clear_dirty pages;
  (* Undo snapshot before speculating. *)
  let ck = Statemgr.Checkpoint.take ~seqno:7 pages tree in
  let root0 = Statemgr.Merkle.root tree in
  let images0 = List.init 32 (Statemgr.Pages.page pages) in
  let count0 = Relsql.Pager.page_count pager in
  (* Speculate: allocate and write more pages, fully committed at the SQL
     layer (tentative execution runs the real operation; undo is PBFT's). *)
  let spec_pg = fill "speculative" in
  Statemgr.Merkle.update tree pages (Statemgr.Pages.dirty pages);
  Statemgr.Pages.clear_dirty pages;
  Alcotest.(check bool) "speculation moved the root" false
    (String.equal root0 (Statemgr.Merkle.root tree));
  (* Roll back. *)
  Statemgr.Checkpoint.restore ck pages tree;
  Relsql.Pager.refresh pager;
  Alcotest.(check string) "merkle root back to pre-speculation" root0
    (Statemgr.Merkle.root tree);
  List.iteri
    (fun i img ->
      Alcotest.(check string)
        (Printf.sprintf "page %d back to pre-speculation" i)
        img (Statemgr.Pages.page pages i))
    images0;
  Alcotest.(check int) "pager header rolled back" count0 (Relsql.Pager.page_count pager);
  Alcotest.(check string) "committed data survives" "committed"
    (String.sub (Relsql.Pager.read_page pager committed_pg) 0 9);
  (* The speculative page is unallocated again: the pager can hand the
     same page number out to the next transaction. *)
  Relsql.Pager.begin_txn pager;
  Alcotest.(check int) "speculative page number reusable" spec_pg
    (Relsql.Pager.allocate_page pager);
  Relsql.Pager.rollback pager

let () =
  Alcotest.run "statemgr"
    [
      ( "pages",
        [
          Alcotest.test_case "read/write" `Quick test_pages_rw;
          Alcotest.test_case "cross-page write" `Quick test_pages_cross_page_write;
          Alcotest.test_case "bounds" `Quick test_pages_bounds;
          Alcotest.test_case "strict notify contract (§3.2)" `Quick test_pages_strict_contract;
          Alcotest.test_case "dirty tracking" `Quick test_pages_dirty_tracking;
          Alcotest.test_case "sparse allocation" `Quick test_pages_sparse_allocation;
          Alcotest.test_case "copy isolation" `Quick test_pages_copy_isolated;
          Alcotest.test_case "load_page" `Quick test_pages_load_page;
          qcheck prop_cow_matches_deep_copy_model;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "root changes on write" `Quick test_merkle_root_changes;
          Alcotest.test_case "diff identical" `Quick test_merkle_diff_identical;
          Alcotest.test_case "leaf access" `Quick test_merkle_leaf_access;
          Alcotest.test_case "non-power-of-two leaves" `Quick test_merkle_non_power_of_two;
          qcheck prop_merkle_update_equals_rebuild;
          qcheck prop_merkle_diff_finds_changes;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "take/restore roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "snapshot isolation" `Quick test_checkpoint_snapshot_isolated;
          Alcotest.test_case "divergent pages" `Quick test_checkpoint_divergent_pages;
          Alcotest.test_case "root from claimed leaves (transfer verification)" `Quick
            test_root_of_leaves_matches_tree;
          Alcotest.test_case "tentative-execution undo via COW (§2.2)" `Quick
            test_tentative_undo_cow;
          qcheck prop_speculate_rollback_reexecute;
        ] );
    ]
