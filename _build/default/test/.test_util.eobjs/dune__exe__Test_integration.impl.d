test/test_integration.ml: Alcotest Array Certificate Client Cluster Config Evoting Harness List Option Pbft Printf Relsql Replica Service Simnet Statemgr String Types
