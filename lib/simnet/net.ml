type addr = int

let any_addr = -1

type profile = {
  latency : float;
  jitter : float;
  bandwidth : float;
  loss : float;
  recv_buffer : int;
}

(* Ping RTT on the paper's cluster is ~150 µs, so ~75 µs one-way; iperf
   showed 938 Mbit/s ≈ 117 MB/s of usable bandwidth. *)
let lan_profile =
  { latency = 120e-6; jitter = 20e-6; bandwidth = 117_000_000.0; loss = 0.0; recv_buffer = 0 }

let wan_profile =
  { latency = 40e-3; jitter = 8e-3; bandwidth = 12_500_000.0; loss = 0.0; recv_buffer = 0 }

type drop_handle = {
  d_pred : src:addr -> dst:addr -> label:string -> bool;
  d_expires : float; (* absolute engine time; infinity = never *)
  mutable d_armed : bool;
}

(* Per-link Byzantine fault hooks. A link is (src, dst); [any_addr] on
   either side acts as a wildcard. Only [Hashtbl.find_opt]/[replace]
   touch the table, so iteration order can never leak into a run. *)
type link_fault = {
  mutable lf_drop : (label:string -> bool) option;
  mutable lf_corrupt : (dst:addr -> label:string -> string -> string) option;
  mutable lf_duplicate : int;
}

type t = {
  engine : Engine.t;
  name : string;
  trace : Trace.t;
  rng : Util.Rng.t;
  mutable prof : profile;
  handlers : (addr, src:addr -> string -> unit) Hashtbl.t;
  nic_free : (addr, float) Hashtbl.t;
  backlog : (addr, unit -> int) Hashtbl.t;
  mutable drops : drop_handle list;
  links : (addr * addr, link_fault) Hashtbl.t;
  mutable partitioned : (addr list * addr list) option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
}

let create engine ?(name = "") ?trace prof =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  {
    engine;
    name;
    trace;
    rng = Util.Rng.split (Engine.rng engine);
    prof;
    handlers = Hashtbl.create 64;
    nic_free = Hashtbl.create 64;
    backlog = Hashtbl.create 64;
    drops = [];
    links = Hashtbl.create 16;
    partitioned = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
  }

let engine t = t.engine
let name t = t.name
let trace t = t.trace
let register t a h = Hashtbl.replace t.handlers a h
let unregister t a = Hashtbl.remove t.handlers a
let set_loss t p = t.prof <- { t.prof with loss = p }
let loss t = t.prof.loss
let set_backlog_probe t a probe = Hashtbl.replace t.backlog a probe

let drop_next_matching t ?(expires_at = Float.infinity) pred =
  let h = { d_pred = pred; d_expires = expires_at; d_armed = true } in
  t.drops <- h :: t.drops;
  h

let cancel_drop h = h.d_armed <- false
let drop_armed h = h.d_armed

let drop_live now d = d.d_armed && now <= d.d_expires

let pending_drops t =
  let now = Engine.now t.engine in
  List.length (List.filter (drop_live now) t.drops)

let drain_drops t =
  let n = pending_drops t in
  List.iter (fun d -> d.d_armed <- false) t.drops;
  t.drops <- [];
  n

let partition t ga gb = t.partitioned <- Some (ga, gb)
let heal t = t.partitioned <- None

(* Scheduled fault plans. These create engine events only when invoked,
   so a benign run's event sequence — and hence its trace digest — is
   untouched. *)

let schedule_loss_window t ~start ~duration p =
  let saved = ref 0.0 in
  Engine.schedule_at t.engine ~time:start (fun () ->
      saved := t.prof.loss;
      set_loss t p);
  Engine.schedule_at t.engine ~time:(start +. duration) (fun () -> set_loss t !saved)

let schedule_partition t ~start ~duration ga gb =
  Engine.schedule_at t.engine ~time:start (fun () -> partition t ga gb);
  Engine.schedule_at t.engine ~time:(start +. duration) (fun () -> heal t)

let link_key ~src ~dst = (src, dst)

let get_link t ~src ~dst =
  match Hashtbl.find_opt t.links (link_key ~src ~dst) with
  | Some lf -> lf
  | None ->
    let lf = { lf_drop = None; lf_corrupt = None; lf_duplicate = 0 } in
    Hashtbl.replace t.links (link_key ~src ~dst) lf;
    lf

(* Most-specific match wins: exact link, then sender wildcard, then
   receiver wildcard. Three point lookups, no table traversal. *)
let link_fault_for t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some lf -> Some lf
  | None -> (
    match Hashtbl.find_opt t.links (src, any_addr) with
    | Some lf -> Some lf
    | None -> Hashtbl.find_opt t.links (any_addr, dst))

let set_link_drop t ~src ~dst pred = (get_link t ~src ~dst).lf_drop <- Some pred
let set_link_corrupt t ~src ~dst f = (get_link t ~src ~dst).lf_corrupt <- Some f
let set_link_duplicate t ~src ~dst n = (get_link t ~src ~dst).lf_duplicate <- Int.max 0 n
let clear_link t ~src ~dst = Hashtbl.remove t.links (link_key ~src ~dst)
let clear_link_faults t = Hashtbl.reset t.links

let crosses_partition t src dst =
  match t.partitioned with
  | None -> false
  | Some (ga, gb) ->
    (List.mem src ga && List.mem dst gb) || (List.mem src gb && List.mem dst ga)

let one_shot_drop_matches t ~src ~dst ~label =
  let now = Engine.now t.engine in
  let rec find = function
    | [] -> false
    | d :: rest ->
      if drop_live now d && d.d_pred ~src ~dst ~label then begin
        d.d_armed <- false;
        true
      end
      else find rest
  in
  let hit = find t.drops in
  if hit || List.exists (fun d -> not (drop_live now d)) t.drops then
    t.drops <- List.filter (drop_live now) t.drops;
  hit

let link_drop_matches lf ~label =
  match lf with
  | Some { lf_drop = Some pred; _ } -> pred ~label
  | _ -> false

(* [detail] is a thunk so senders skip rendering it (a sprintf per
   message) whenever tracing is off — the common case for experiments. *)
let record t ~src ~dst ~label ~detail ~size ~delivered =
  if Trace.enabled t.trace then
    Trace.record t.trace
      {
        time = Engine.now t.engine;
        src;
        dst;
        label = (if delivered then label else label ^ " [LOST]");
        detail = detail ();
        size;
      }

let no_detail () = ""

let send t ?(label = "msg") ?(detail = no_detail) ~src ~dst payload =
  let lf = link_fault_for t ~src ~dst in
  (* Corruption models a Byzantine sender NIC: the bytes on the wire are
     what the hook returns, so size/serialization charge the mutated
     payload. *)
  let payload =
    match lf with Some { lf_corrupt = Some f; _ } -> f ~dst ~label payload | _ -> payload
  in
  let size = String.length payload in
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  let lost =
    crosses_partition t src dst
    || one_shot_drop_matches t ~src ~dst ~label
    || link_drop_matches lf ~label
    || Util.Rng.bernoulli t.rng t.prof.loss
  in
  if lost then begin
    t.dropped <- t.dropped + 1;
    record t ~src ~dst ~label ~detail ~size ~delivered:false
  end
  else begin
    (* NIC egress serialization: back-to-back sends from one host queue
       behind each other at the configured bandwidth. *)
    let now = Engine.now t.engine in
    let nic = match Hashtbl.find_opt t.nic_free src with Some v -> v | None -> 0.0 in
    let start = Float.max now nic in
    let tx = float_of_int size /. t.prof.bandwidth in
    Hashtbl.replace t.nic_free src (start +. tx);
    let deliver ~label ~arrival =
      record t ~src ~dst ~label ~detail ~size ~delivered:true;
      Engine.schedule_at t.engine ~time:arrival (fun () ->
          match Hashtbl.find_opt t.handlers dst with
          | None -> t.dropped <- t.dropped + 1
          | Some h ->
            let overflow =
              t.prof.recv_buffer > 0
              &&
              match Hashtbl.find_opt t.backlog dst with
              | None -> false
              | Some probe -> probe () >= t.prof.recv_buffer
            in
            if overflow then begin
              t.dropped <- t.dropped + 1;
              if Trace.enabled t.trace then
                Trace.record t.trace
                  {
                    time = Engine.now t.engine;
                    src;
                    dst;
                    label = label ^ " [OVERFLOW]";
                    detail = detail ();
                    size;
                  }
            end
            else begin
              t.delivered <- t.delivered + 1;
              h ~src payload
            end)
    in
    let prop () =
      Float.max 1e-6 (Util.Rng.gaussian t.rng ~mean:t.prof.latency ~stdev:t.prof.jitter)
    in
    deliver ~label ~arrival:(start +. tx +. prop ());
    (* Router-level duplication: extra copies share the egress slot but
       take an independent propagation sample each. Draws happen only
       when the fault is installed, so benign RNG streams are unmoved. *)
    (match lf with
    | Some { lf_duplicate = n; _ } when n > 0 ->
      for _ = 1 to n do
        deliver ~label:(label ^ " [DUP]") ~arrival:(start +. tx +. prop ())
      done
    | _ -> ())
  end

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped
let bytes_sent t = t.bytes
