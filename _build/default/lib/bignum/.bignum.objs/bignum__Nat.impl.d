lib/bignum/nat.ml: Array Bytes Char Format Stdlib String Util
