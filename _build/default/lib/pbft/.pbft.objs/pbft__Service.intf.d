lib/pbft/service.mli: Statemgr Types
