(** MAC authenticators, the PBFT optimization that replaces one public-key
    signature with a vector of per-replica MACs.

    A client (or replica) that shares a symmetric session key with each of
    the [n] replicas authenticates a message by attaching one 8-byte tag
    per replica. Each replica verifies only its own entry. The paper's
    §2.3 documents the robustness consequence: the tags are *transient*
    state, so a restarted replica cannot validate logged requests until
    the periodic authenticator rebroadcast reaches it — we reproduce that
    behaviour in the PBFT layer. *)

type t = { tags : (int * string) list }
(** Association from replica id to its 8-byte tag. *)

val compute : keys:(int * Mac.key) list -> string -> t
(** [compute ~keys msg] builds the tag vector; [keys] maps replica id to
    the session key shared with that replica. *)

val check : key:Mac.key -> replica:int -> string -> t -> bool
[@@trust.sanitizer
  "authenticator entry check: true vouches that this replica's tag verifies the payload"]
(** [check ~key ~replica msg t] verifies the tag addressed to [replica];
    false if the entry is missing or does not verify. *)

val wire_size : t -> int
(** Bytes this authenticator occupies on the wire. *)

val encode : Util.Codec.W.t -> t -> unit

val decode : Util.Codec.R.t -> t
[@@trust.source "authenticator vector parsed from wire bytes"]
