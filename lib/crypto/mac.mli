(** Short message-authentication codes in the style of the UMAC32 tags the
    PBFT code base uses: 8-byte truncations of HMAC-SHA256. Authenticators
    (one such tag per replica) are built from these. *)

type key = string
(** Symmetric key; any length (hashed into the HMAC block). *)

val tag_size : int
(** 8 bytes. *)

val compute : key:key -> string -> string
(** [compute ~key msg] is the 8-byte tag. *)

val verify : key:key -> string -> tag:string -> bool
[@@trust.sanitizer "MAC tag check: true vouches that the message bytes were keyed by the peer"]

val fresh_key : Util.Rng.t -> key
(** 16 random bytes. *)
