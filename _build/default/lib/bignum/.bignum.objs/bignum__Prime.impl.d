lib/bignum/prime.ml: List Nat
