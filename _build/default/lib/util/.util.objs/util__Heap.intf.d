lib/util/heap.mli:
