lib/util/codec.ml: Buffer Bytes Char Int64 List String
