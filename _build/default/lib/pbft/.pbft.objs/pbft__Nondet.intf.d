lib/pbft/nondet.mli: Config Util
