open Bignum

type share = { index : int; value : Nat.t }

(* Evaluate the polynomial with the given coefficients (constant first) at
   x, all arithmetic mod field, by Horner's rule. *)
let eval_poly ~field coeffs x =
  List.fold_left (fun acc c -> Nat.mod_add (Nat.mod_mul acc x field) c field) Nat.zero
    (List.rev coeffs)

let split rng ~field ~threshold ~shares secret =
  if threshold < 1 || shares < threshold then invalid_arg "Shamir.split: bad threshold";
  if Nat.compare (Nat.of_int shares) field >= 0 then invalid_arg "Shamir.split: field too small";
  if Nat.compare secret field >= 0 then invalid_arg "Shamir.split: secret exceeds field";
  let coeffs = secret :: List.init (threshold - 1) (fun _ -> Nat.random_below rng field) in
  List.init shares (fun i ->
      let index = i + 1 in
      { index; value = eval_poly ~field coeffs (Nat.of_int index) })

(* Lagrange basis at zero: λ_i = Π_{j≠i} x_j / (x_j - x_i), in the field. *)
let lagrange_at_zero ~field shares i =
  let xi = Nat.of_int (List.nth shares i).index in
  List.fold_left
    (fun acc (j, s) ->
      if j = i then acc
      else begin
        let xj = Nat.of_int s.index in
        let denom = Nat.mod_sub xj xi field in
        match Nat.mod_inverse denom field with
        | None -> invalid_arg "Shamir.combine: duplicate share indices"
        | Some inv -> Nat.mod_mul acc (Nat.mod_mul xj inv field) field
      end)
    Nat.one
    (List.mapi (fun j s -> (j, s)) shares)

let combine ~field shares =
  match shares with
  | [] -> invalid_arg "Shamir.combine: no shares"
  | _ ->
    List.fold_left
      (fun (acc, i) s ->
        let li = lagrange_at_zero ~field shares i in
        (Nat.mod_add acc (Nat.mod_mul s.value li field) field, i + 1))
      (Nat.zero, 0) shares
    |> fst

module Feldman = struct
  type group = { p : Nat.t; q : Nat.t; g : Nat.t }

  let generate_group rng ~bits =
    (* Search for a Sophie Germain pair: q prime with 2q + 1 also prime. *)
    let rec go () =
      let q = Prime.generate rng ~bits in
      let p = Nat.add (Nat.shift_left q 1) Nat.one in
      if Prime.is_probable_prime ~rounds:20 rng p then (p, q) else go ()
    in
    let p, q = go () in
    (* g = h² is a generator of the order-q subgroup for any h ∉ {±1}. *)
    let rec gen () =
      let h = Nat.add Nat.two (Nat.random_below rng (Nat.sub p (Nat.of_int 4))) in
      let g = Nat.mod_mul h h p in
      if Nat.equal g Nat.one then gen () else g
    in
    { p; q; g = gen () }

  type commitments = Nat.t list

  let commit group coeffs = List.map (fun c -> Nat.mod_exp group.g c group.p) coeffs

  let verify_share group commitments share =
    let x = Nat.of_int share.index in
    (* Π C_j^{x^j}, computing x^j incrementally mod q (exponents live in
       the order-q subgroup). *)
    let expected, _ =
      List.fold_left
        (fun (acc, xj) c ->
          let acc = Nat.mod_mul acc (Nat.mod_exp c xj group.p) group.p in
          (acc, Nat.mod_mul xj x group.q))
        (Nat.one, Nat.one) commitments
    in
    Nat.equal (Nat.mod_exp group.g share.value group.p) expected
end
