lib/relsql/lexer.ml: Buffer List Printf String
