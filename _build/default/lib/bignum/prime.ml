let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89;
    97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149; 151; 157; 163; 167; 173; 179; 181;
    191; 193; 197; 199; 211; 223; 227; 229; 233; 239; 241; 251 ]

let divisible_by_small n =
  List.exists
    (fun p ->
      let pn = Nat.of_int p in
      Nat.compare n pn > 0 && Nat.is_zero (Nat.rem n pn))
    small_primes

let miller_rabin_round rng n d s =
  let n_minus_1 = Nat.sub n Nat.one in
  let a = Nat.add Nat.two (Nat.random_below rng (Nat.sub n (Nat.of_int 3))) in
  let x = ref (Nat.mod_exp a d n) in
  if Nat.equal !x Nat.one || Nat.equal !x n_minus_1 then true
  else begin
    let witness = ref false in
    (let r = ref 1 in
     while (not !witness) && !r < s do
       x := Nat.mod_mul !x !x n;
       if Nat.equal !x n_minus_1 then witness := true;
       incr r
     done);
    !witness
  end

let is_probable_prime ?(rounds = 25) rng n =
  if Nat.compare n Nat.two < 0 then false
  else if List.exists (fun p -> Nat.equal n (Nat.of_int p)) small_primes then true
  else if Nat.is_even n || divisible_by_small n then false
  else begin
    (* n - 1 = d * 2^s with d odd. *)
    let n_minus_1 = Nat.sub n Nat.one in
    let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else (d, s) in
    let d, s = split n_minus_1 0 in
    let rec rounds_pass i = i >= rounds || (miller_rabin_round rng n d s && rounds_pass (i + 1)) in
    rounds_pass 0
  end

let candidate rng ~bits =
  let v = Nat.random_bits rng (bits - 2) in
  (* Force the top two bits (so p*q has exactly 2·bits bits) and oddness. *)
  let high = Nat.shift_left (Nat.of_int 3) (bits - 2) in
  let v = Nat.add high v in
  if Nat.is_even v then Nat.add v Nat.one else v

let generate rng ~bits =
  if bits < 4 then invalid_arg "Prime.generate: too few bits";
  let rec go () =
    let c = candidate rng ~bits in
    if is_probable_prime rng c then c else go ()
  in
  go ()

let generate_blum rng ~bits =
  let rec go () =
    let c = candidate rng ~bits in
    (* Adjust to ≡ 3 (mod 4). *)
    let c = if Nat.rem c (Nat.of_int 4) |> Nat.to_int = 3 then c else Nat.add c Nat.two in
    if is_probable_prime rng c then c else go ()
  in
  go ()
