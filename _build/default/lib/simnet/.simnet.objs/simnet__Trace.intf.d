lib/simnet/trace.mli:
