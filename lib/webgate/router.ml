type config = {
  topology : Relsql.Shard.topology;
  flush_bytes : int;
  flush_deadline : float;
  max_queue : int;
  max_sessions : int;
  prepare_timeout : float;
  tx_ttl : float;
}

type pending = {
  pr_session : int;
  pr_id : int;
  pr_op : string;
  pr_addr : int;
  pr_enq : float;
  pr_readonly : bool;
}

type lane = {
  l_shard : int;
  l_data : Pbft.Client.t array;
  l_control : Pbft.Client.t;
  l_free : int Queue.t;
  l_pending : pending Queue.t;
  mutable l_pending_bytes : int;
  mutable l_inflight : int;  (** outstanding data-connection batches *)
  mutable l_control_busy : bool;
  mutable l_blocked : bool;  (** involved in the in-flight cross-shard tx *)
  mutable l_timer : Simnet.Engine.timer option;
  mutable l_completed : int;
  mutable l_queue_peak : int;
}

type xpending = {
  xp_session : int;
  xp_id : int;
  xp_addr : int;
  xp_enq : float;
  xp_route : int list;
  xp_route_key : string;
  xp_plan : (int * string) list;
}

type xstate = {
  x : xpending;
  x_tx : int;
  mutable x_sent : bool;  (** prepares dispatched (lanes were quiesced) *)
  mutable x_awaiting : int;  (** prepare votes not yet in *)
  mutable x_votes : Relsql.Twopc.vote list;
  mutable x_aborting : bool;
  mutable x_aborts_sent : int list;  (** shards already sent their Abort *)
  mutable x_acks : int;  (** commit or abort acknowledgements received *)
  mutable x_timer : Simnet.Engine.timer option;
}

(* The session's replay cache is keyed on (route, request id): a cross-
   shard reply cached under route "0,2" can never answer a single-shard
   retransmission that reused the same id after a session reset. *)
type session = { mutable s_last_reply : (string * int * string) option }

type t = {
  cfg : config;
  engine : Simnet.Engine.t;
  net : Simnet.Net.t;
  cpu : Simnet.Cpu.t;
  classify : string -> bool;
  lanes : lane array;
  xq : xpending Queue.t;
  mutable current : xstate option;
  mutable next_tx : int;
  sessions : (int, session) Util.Lru.t;
  latency : Util.Stats.t;
  mutable n_completed : int;
  mutable n_shed : int;
  mutable n_rejected : int;
  mutable n_cache_hits : int;
  mutable n_cross_commits : int;
  mutable n_cross_aborts : int;
  mutable n_cross_timeouts : int;
  mutable xq_peak : int;
  mutable alive : bool;
}

let now t = Simnet.Engine.now t.engine

let send_reply t ~dst ~status ~session ~req_id ~result =
  let frame = Frontdoor.encode_reply ~status ~session ~req_id ~result in
  Simnet.Cpu.execute t.cpu ~cost:(Frontdoor.frame_cost (String.length frame)) (fun () ->
      Simnet.Net.send t.net ~label:"gw-reply" ~src:Frontdoor.frontdoor_addr ~dst frame)

let session_record t session =
  match Util.Lru.find t.sessions session with
  | Some s -> s
  | None ->
    let s = { s_last_reply = None } in
    (Util.Lru.put t.sessions session s)
    [@trustlint.allow
      "admission record for a not-yet-trusted edge session (§gateway trust \
       model): the router never trusts the op itself — replicas MAC-verify \
       every operation before execution — and the LRU bound caps what an \
       unauthenticated peer can pin"];
    s

let cache_reply t ~session ~route_key ~req_id ~result =
  match Util.Lru.find t.sessions session with
  | Some s ->
    (s.s_last_reply <- Some (route_key, req_id, result))
    [@trustlint.allow
      "the result was produced by the shard lane's Pbft.Client, which \
       surfaces a reply only after f+1 matching replies whose MACs \
       verify_reply_auth checked"]
  | None -> ()

(* --- single-shard lanes (the per-shard Frontdoor path) --- *)

let rec lane_dispatch t lane trigger =
  ignore trigger;
  if t.alive && not lane.l_blocked then
    match Queue.take_opt lane.l_free with
    | None -> ()
    | Some idx ->
      (* A batch is a contiguous same-classification run: mixing one
         write into a read batch would drag every read through full
         agreement. *)
      let rec take acc bytes ro =
        if bytes >= t.cfg.flush_bytes then List.rev acc
        else
          match Queue.peek_opt lane.l_pending with
          | None -> List.rev acc
          | Some p ->
            let same = match acc with [] -> true | _ -> Bool.equal p.pr_readonly ro in
            if same then begin
              ignore (Queue.pop lane.l_pending);
              (lane.l_pending_bytes <- lane.l_pending_bytes - String.length p.pr_op)
              [@trustlint.allow
                "flow-control accounting over the router's own admitted \
                 frames; drives batching and shedding only, never replicated \
                 state"];
              take (p :: acc) (bytes + String.length p.pr_op) p.pr_readonly
            end
            else List.rev acc
      in
      let batch = take [] 0 false in
      match batch with
      | [] -> Queue.push idx lane.l_free
      | _ -> begin
        let ro = List.for_all (fun p -> p.pr_readonly) batch in
        (lane.l_inflight <- lane.l_inflight + 1)
        [@trustlint.allow
          "in-flight accounting for the router's own dispatches (the lane \
           was selected by routing the unverified op, which is admission \
           control's job); replicas MAC-verify the op before execution"];
        let op =
          match batch with
          | [ p ] -> p.pr_op (* untouched single-op dispatch *)
          | _ -> Frontdoor.encode_coalesced (List.map (fun p -> (p.pr_session, p.pr_op)) batch)
        in
        let route_key = string_of_int lane.l_shard in
        Pbft.Client.invoke lane.l_data.(idx) ~readonly:ro op (fun encoded ->
            if t.alive then begin
              Queue.push idx lane.l_free;
              (lane.l_inflight <- lane.l_inflight - 1)
              [@trustlint.allow
                "in-flight accounting for the router's own dispatches; the \
                 completed call went through Pbft.Client's f+1 \
                 MAC-verified-reply quorum"];
              let results =
                match batch with
                | [ _ ] -> [ encoded ]
                | _ -> (
                  match Frontdoor.decode_results encoded with
                  | Some rs when List.length rs = List.length batch -> rs
                  | Some _ | None -> List.map (fun _ -> encoded) batch)
              in
              List.iter2
                (fun p result ->
                  t.n_completed <- t.n_completed + 1;
                  lane.l_completed <- lane.l_completed + 1;
                  Util.Stats.add t.latency (now t -. p.pr_enq);
                  cache_reply t ~session:p.pr_session ~route_key ~req_id:p.pr_id ~result;
                  send_reply t ~dst:p.pr_addr ~status:Frontdoor.Done ~session:p.pr_session
                    ~req_id:p.pr_id ~result)
                batch results;
              if lane.l_blocked then maybe_begin_prepares t
              else if lane.l_pending_bytes >= t.cfg.flush_bytes then lane_dispatch t lane `Size
            end)
      end

and lane_dispatch_all t lane trigger =
  let before = Queue.length lane.l_pending in
  lane_dispatch t lane trigger;
  if Queue.length lane.l_pending < before && lane.l_pending_bytes >= t.cfg.flush_bytes then
    lane_dispatch_all t lane trigger

and arm_lane_deadline t lane =
  match lane.l_timer with
  | Some _ -> ()
  | None ->
    if not (Queue.is_empty lane.l_pending) then
      lane.l_timer <-
        Some
          (Simnet.Engine.timer t.engine ~delay:t.cfg.flush_deadline (fun () ->
               lane.l_timer <- None;
               if t.alive then begin
                 if not (Queue.is_empty lane.l_pending) then lane_dispatch_all t lane `Deadline;
                 arm_lane_deadline t lane
               end))

(* --- the cross-shard coordinator --- *)

and lane_quiet lane = lane.l_inflight = 0 && not lane.l_control_busy

and resolve_cross t xs =
  (match xs.x_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
  xs.x_timer <- None;
  List.iter
    (fun s ->
      let lane = t.lanes.(s) in
      lane.l_blocked <- false;
      lane_dispatch_all t lane `Size;
      arm_lane_deadline t lane)
    xs.x.xp_route;
  t.current <- None;
  try_start_cross t

and send_abort_to t xs lane =
  if not (List.mem lane.l_shard xs.x_aborts_sent) && not lane.l_control_busy then begin
    xs.x_aborts_sent <- lane.l_shard :: xs.x_aborts_sent;
    lane.l_control_busy <- true;
    let op = Relsql.Twopc.encode_op (Relsql.Twopc.Abort { tx = xs.x_tx; reason = "coordinator" }) in
    Pbft.Client.invoke lane.l_control op (fun _ ->
        if t.alive then begin
          lane.l_control_busy <- false;
          (* The shard has rolled back; release it for single-shard
             traffic now rather than holding it for the slowest
             participant (which may be mid-view-change for seconds). *)
          lane.l_blocked <- false;
          lane_dispatch_all t lane `Size;
          arm_lane_deadline t lane;
          xs.x_acks <- xs.x_acks + 1;
          if xs.x_acks >= List.length xs.x.xp_route then resolve_cross t xs
        end)
  end

and start_abort t xs ~reason ~timed_out =
  if not xs.x_aborting then begin
    xs.x_aborting <- true;
    (match xs.x_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
    xs.x_timer <- None;
    t.n_cross_aborts <- t.n_cross_aborts + 1;
    if timed_out then t.n_cross_timeouts <- t.n_cross_timeouts + 1;
    let result = "error:2pc-aborted:" ^ reason in
    cache_reply t ~session:xs.x.xp_session ~route_key:xs.x.xp_route_key ~req_id:xs.x.xp_id ~result;
    Util.Stats.add t.latency (now t -. xs.x.xp_enq);
    send_reply t ~dst:xs.x.xp_addr ~status:Frontdoor.Done ~session:xs.x.xp_session
      ~req_id:xs.x.xp_id ~result;
    (* Shards whose control connection is free get their Abort now; one
       still awaiting a prepare reply (a stalled or Byzantine group) gets
       it when that reply finally lands — and the agreed deadline inside
       the shard bounds the wait even if it never does. *)
    List.iter (fun s -> send_abort_to t xs t.lanes.(s)) xs.x.xp_route
  end

and commit_cross t xs =
  (match xs.x_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
  xs.x_timer <- None;
  let votes = xs.x_votes in
  let op = Relsql.Twopc.encode_op (Relsql.Twopc.Commit { tx = xs.x_tx; votes }) in
  List.iter
    (fun s ->
      let lane = t.lanes.(s) in
      lane.l_control_busy <- true;
      Pbft.Client.invoke lane.l_control op (fun _ ->
          if t.alive then begin
            lane.l_control_busy <- false;
            lane.l_completed <- lane.l_completed + 1;
            xs.x_acks <- xs.x_acks + 1;
            if xs.x_acks >= List.length xs.x.xp_route then begin
              t.n_cross_commits <- t.n_cross_commits + 1;
              t.n_completed <- t.n_completed + 1;
              (* Assemble the session-visible reply from the votes: each
                 shard's script results, in shard order. *)
              let part v =
                let prefix = Relsql.Twopc.prepared_prefix xs.x_tx in
                let r = v.Relsql.Twopc.v_result in
                let body =
                  if String.length r >= String.length prefix then
                    String.sub r (String.length prefix) (String.length r - String.length prefix)
                  else r
                in
                Printf.sprintf "s%d=%s" v.Relsql.Twopc.v_shard body
              in
              let sorted =
                List.sort
                  (fun a b -> Int.compare a.Relsql.Twopc.v_shard b.Relsql.Twopc.v_shard)
                  votes
              in
              let result = String.concat ";" (List.map part sorted) in
              cache_reply t ~session:xs.x.xp_session ~route_key:xs.x.xp_route_key
                ~req_id:xs.x.xp_id ~result;
              Util.Stats.add t.latency (now t -. xs.x.xp_enq);
              send_reply t ~dst:xs.x.xp_addr ~status:Frontdoor.Done ~session:xs.x.xp_session
                ~req_id:xs.x.xp_id ~result;
              resolve_cross t xs
            end
          end))
    xs.x.xp_route

and maybe_begin_prepares t =
  match t.current with
  | Some xs when (not xs.x_sent) && List.for_all (fun s -> lane_quiet t.lanes.(s)) xs.x.xp_route
    ->
    xs.x_sent <- true;
    xs.x_awaiting <- List.length xs.x.xp_plan;
    let deadline = now t +. t.cfg.tx_ttl in
    List.iter
      (fun (shard, script) ->
        let lane = t.lanes.(shard) in
        lane.l_control_busy <- true;
        let op =
          Relsql.Twopc.encode_op
            (Relsql.Twopc.Prepare
               { tx = xs.x_tx; deadline; shards = xs.x.xp_route; script })
        in
        Pbft.Client.invoke_attested lane.l_control op (fun ~rq_id result cert ->
            if t.alive then begin
              lane.l_control_busy <- false;
              xs.x_awaiting <- xs.x_awaiting - 1;
              if xs.x_aborting then
                (* Late vote for a transaction the coordinator already
                   gave up on: the now-free connection carries the Abort. *)
                send_abort_to t xs lane
              else if
                Relsql.Twopc.(
                  String.length result >= String.length (prepared_prefix xs.x_tx)
                  && String.equal
                       (String.sub result 0 (String.length (prepared_prefix xs.x_tx)))
                       (prepared_prefix xs.x_tx))
              then begin
                let cid =
                  match Pbft.Client.client_id lane.l_control with Some c -> c | None -> 0
                in
                xs.x_votes <-
                  {
                    Relsql.Twopc.v_shard = shard;
                    v_client = cid;
                    v_rq_id = rq_id;
                    v_result = result;
                    v_cert = (match cert with Some c -> c | None -> "");
                  }
                  :: xs.x_votes;
                if xs.x_awaiting = 0 then commit_cross t xs
              end
              else start_abort t xs ~reason:("vote:" ^ result) ~timed_out:false
            end))
      xs.x.xp_plan;
    xs.x_timer <-
      Some
        (Simnet.Engine.timer t.engine ~delay:t.cfg.prepare_timeout (fun () ->
             xs.x_timer <- None;
             if t.alive then start_abort t xs ~reason:"timeout" ~timed_out:true))
  | Some _ | None -> ()

and try_start_cross t =
  match t.current with
  | Some _ -> ()
  | None -> (
    match Queue.take_opt t.xq with
    | None -> ()
    | Some xp ->
      t.next_tx <- t.next_tx + 1;
      let xs =
        {
          x = xp;
          x_tx = t.next_tx;
          x_sent = false;
          x_awaiting = 0;
          x_votes = [];
          x_aborting = false;
          x_aborts_sent = [];
          x_acks = 0;
          x_timer = None;
        }
      in
      t.current <- Some xs;
      List.iter
        (fun s ->
          let lane = t.lanes.(s) in
          lane.l_blocked <- true;
          (match lane.l_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
          lane.l_timer <- None)
        xp.xp_route;
      maybe_begin_prepares t)

(* --- admission --- *)

let admit_single t lane p =
  if Queue.length lane.l_pending >= t.cfg.max_queue then begin
    t.n_shed <- t.n_shed + 1;
    send_reply t ~dst:p.pr_addr ~status:Frontdoor.Shed ~session:p.pr_session ~req_id:p.pr_id
      ~result:""
  end
  else begin
    Queue.push p lane.l_pending;
    (lane.l_pending_bytes <- lane.l_pending_bytes + String.length p.pr_op)
    [@trustlint.allow
      "flow-control accounting must act before any crypto by design: the \
       byte count drives batching and shedding at this router only, never \
       replicated state"];
    (lane.l_queue_peak <- Int.max lane.l_queue_peak (Queue.length lane.l_pending))
    [@trustlint.allow
      "queue-depth telemetry over the router's own admission queue; reported \
       in stats only"];
    if lane.l_pending_bytes >= t.cfg.flush_bytes then lane_dispatch_all t lane `Size;
    arm_lane_deadline t lane
  end

let admit_cross t xp =
  if Queue.length t.xq >= t.cfg.max_queue then begin
    t.n_shed <- t.n_shed + 1;
    send_reply t ~dst:xp.xp_addr ~status:Frontdoor.Shed ~session:xp.xp_session ~req_id:xp.xp_id
      ~result:""
  end
  else begin
    Queue.push xp t.xq;
    t.xq_peak <- Int.max t.xq_peak (Queue.length t.xq);
    try_start_cross t
  end

let on_frame t ~src wire =
  if t.alive then
    Simnet.Cpu.execute t.cpu ~cost:(Frontdoor.frame_cost (String.length wire)) (fun () ->
        match Frontdoor.decode_request wire with
        | None -> t.n_rejected <- t.n_rejected + 1
        | Some (session, req_id, op) -> begin
          let s = session_record t session in
          let route = Relsql.Shard.classify t.cfg.topology op in
          let route_key = Relsql.Shard.route_key route in
          match s.s_last_reply with
          | Some (key, id, result) when id = req_id && String.equal key route_key ->
            t.n_cache_hits <- t.n_cache_hits + 1;
            send_reply t ~dst:src ~status:Frontdoor.Done ~session ~req_id ~result
          | Some _ | None -> (
            match route with
            | Relsql.Shard.Single shard ->
              admit_single t t.lanes.(shard)
                {
                  pr_session = session;
                  pr_id = req_id;
                  pr_op = op;
                  pr_addr = src;
                  pr_enq = now t;
                  pr_readonly = t.classify op;
                }
            | Relsql.Shard.Cross shards ->
              admit_cross t
                {
                  xp_session = session;
                  xp_id = req_id;
                  xp_addr = src;
                  xp_enq = now t;
                  xp_route = shards;
                  xp_route_key = route_key;
                  xp_plan = Relsql.Shard.plan t.cfg.topology op;
                })
        end)

let create ~cfg ~engine ~net ~classify ~lanes () =
  if Array.length lanes <> Relsql.Shard.shards cfg.topology then
    invalid_arg "Router.create: one lane per shard required";
  let mk_lane i (data, control) =
    if Array.length data < 1 then invalid_arg "Router.create: lane without data connections";
    let free = Queue.create () in
    Array.iteri (fun j _ -> Queue.push j free) data;
    {
      l_shard = i;
      l_data = data;
      l_control = control;
      l_free = free;
      l_pending = Queue.create ();
      l_pending_bytes = 0;
      l_inflight = 0;
      l_control_busy = false;
      l_blocked = false;
      l_timer = None;
      l_completed = 0;
      l_queue_peak = 0;
    }
  in
  let t =
    {
      cfg;
      engine;
      net;
      cpu = Simnet.Cpu.create engine;
      classify;
      lanes = Array.mapi mk_lane lanes;
      xq = Queue.create ();
      current = None;
      next_tx = 0;
      sessions = Util.Lru.create ~capacity:cfg.max_sessions;
      latency = Util.Stats.create ();
      n_completed = 0;
      n_shed = 0;
      n_rejected = 0;
      n_cache_hits = 0;
      n_cross_commits = 0;
      n_cross_aborts = 0;
      n_cross_timeouts = 0;
      xq_peak = 0;
      alive = true;
    }
  in
  Simnet.Net.register net Frontdoor.frontdoor_addr (fun ~src wire -> on_frame t ~src wire);
  Simnet.Net.set_backlog_probe net Frontdoor.frontdoor_addr (fun () ->
      Array.fold_left (fun acc l -> acc + Queue.length l.l_pending) (Queue.length t.xq) t.lanes);
  t

let completed t = t.n_completed
let shard_completed t = Array.map (fun l -> l.l_completed) t.lanes
let cross_commits t = t.n_cross_commits
let cross_aborts t = t.n_cross_aborts
let cross_timeouts t = t.n_cross_timeouts
let shed t = t.n_shed
let rejected t = t.n_rejected
let reply_cache_hits t = t.n_cache_hits
let queue_peaks t = Array.map (fun l -> l.l_queue_peak) t.lanes
let cross_queue_peak t = t.xq_peak
let session_evictions t = Util.Lru.evictions t.sessions
let latency_stats t = t.latency

let shutdown t =
  t.alive <- false;
  Array.iter
    (fun l ->
      (match l.l_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
      l.l_timer <- None)
    t.lanes;
  (match t.current with
  | Some xs ->
    (match xs.x_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
    xs.x_timer <- None
  | None -> ());
  Simnet.Net.unregister t.net Frontdoor.frontdoor_addr
