lib/harness/scenario.mli: Pbft Simnet
