lib/crypto/mac.mli: Util
