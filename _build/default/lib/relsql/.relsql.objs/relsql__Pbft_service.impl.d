lib/relsql/pbft_service.ml: Database Int64 Pager Pbft Printf Simdisk Statemgr String Vfs
