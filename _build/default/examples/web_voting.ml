(* §3.3.3 realized: a browser-hosted voter. The browser speaks only JSON;
   each replica hosts a WebSocket/JSON bridge (no centralized component),
   and the browser signs with a browser-available public-key scheme.

   Run with:  dune exec examples/web_voting.exe *)

open Pbft

let () =
  let cfg = { (Config.default ~f:1) with Config.dynamic_clients = true } in
  let cluster = Cluster.create ~seed:13 ~num_clients:1 ~service:(Evoting.service ()) cfg in
  let engine = Cluster.engine cluster in
  let net = Cluster.net cluster in

  (* One JSON bridge per replica — co-located, not a central agent. *)
  let bridges =
    List.init cfg.Config.n (fun i ->
        Webgate.Gateway.Bridge.attach ~cfg ~costs:Costmodel.default ~engine ~net ~replica:i)
  in

  (* The native client plays election official; the browser is a voter. *)
  let official = Cluster.client cluster 0 in
  let rng = Util.Rng.create 4 in
  let browser =
    Webgate.Gateway.Browser.create ~cfg ~costs:Costmodel.default ~engine ~net ~addr:7001
      ~signer:(Crypto.Keychain.make Crypto.Keychain.Simulated rng ~id:7001)
      ~registry:{ Replica.reg_verifiers = [||]; reg_group_secret = ""; reg_static_clients = [] }
      ()
  in

  Client.join official ~idbuf:"official:pw" (fun _ ->
      Client.invoke official (Evoting.create_election_sql ~name:"referendum") (fun r ->
          Printf.printf "official creates election -> %s\n" (String.trim r)));
  Cluster.run cluster ~seconds:3.0;

  Webgate.Gateway.Browser.join browser ~idbuf:"webvoter:pw" (function
    | Some id -> Printf.printf "browser joined over JSON as client %d\n" id
    | None -> print_endline "browser join denied");
  Cluster.run cluster ~seconds:3.0;

  (* The browser's vote: a JSON frame per replica, translated by the
     bridges into native protocol datagrams. *)
  Webgate.Gateway.Browser.invoke browser
    (Evoting.cast_vote_sql ~election:1 ~voter:"webvoter" ~choice:"yes")
    (fun r ->
      Printf.printf "browser casts vote -> %s\n"
        (if Evoting.vote_accepted r then "accepted" else "rejected");
      Webgate.Gateway.Browser.invoke browser ~readonly:true (Evoting.tally_sql ~election:1)
        (fun r ->
          print_endline "browser reads tally over JSON:";
          print_string r));
  Cluster.run cluster ~seconds:5.0;

  List.iteri
    (fun i b ->
      Printf.printf "bridge %d translated %d frames (%d rejected)\n" i
        (Webgate.Gateway.Bridge.frames_translated b)
        (Webgate.Gateway.Bridge.rejected b))
    bridges
