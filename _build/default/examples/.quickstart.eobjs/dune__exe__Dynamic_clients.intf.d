examples/dynamic_clients.mli:
