lib/simnet/engine.mli: Util
