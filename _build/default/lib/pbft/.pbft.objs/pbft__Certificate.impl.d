lib/pbft/certificate.ml: Crypto List Printf
