lib/simnet/cpu.mli: Engine
