test/test_statemgr.ml: Alcotest Char List QCheck QCheck_alcotest Statemgr String
